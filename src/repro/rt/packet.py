"""Vectorized ray-packet tracing over the flattened structure layout.

The scalar :class:`~repro.rt.tracer.Tracer` walks acceleration
structures one ray at a time in pure Python — the throughput bottleneck
of the whole reproduction.  Primary rays inside a tile are highly
coherent, so this module traces a whole tile's bundle *together* over
the one flattened layout every structure lowers to
(:func:`repro.bvh.flatten.flatten`):

* **batched slab tests** — each node of a flattened level is visited at
  most once per packet; its (up to ``width``) child boxes are slab-tested
  against every ray still active at that node in one numpy broadcast,
  and children are descended with the surviving ray subset;
* **two-level traversal** — TLAS leaves gather their instance records
  (Gaussian id, world->object transform, shared-BLAS slot), the live
  (ray, instance) bundle is transformed into BLAS object space in one
  batch, and each shared BLAS is traversed *once* for its whole instance
  group: the unit-sphere BLAS is a batched root-box test, the template
  mesh BLAS reuses the same generic level traversal with the pair bundle
  as its rays;
* **masked Möller–Trumbore** — all (ray, triangle) candidate pairs
  produced by the leaf visits (monolithic leaves or template-BLAS
  leaves) are intersected in one vectorized batch;
* **vectorized front-to-back blending** — per-ray hit lists are sorted
  by ``(t, gaussian_id)``, transmittance is a row-wise ``cumprod``, and
  early ray termination is a monotone cutoff on the running
  transmittance, exactly mirroring the scalar blend loop's arithmetic.

Parity is the contract: for every supported configuration the packet
engine renders the same image as the scalar tracer to within 1e-9 per
channel, and the functional counters that stay meaningful without
per-round traversal — ``n_rays``, ``blended_total``,
``rays_terminated_early`` — agree exactly.  The equivalence rests on two
properties of the (tie-fixed) multi-round algorithm: each round's
k-buffer holds exactly the k closest remaining hits, so the blend
sequence across rounds is the globally ``(t, gid)``-sorted hit list
capped at ``max_rounds * k`` entries; and early termination is a
monotone threshold on the running transmittance, so it commutes with
computing all hits first.

Scope: every structure the repo builds — monolithic (triangle and
custom proxies) *and* two-level (``tlas+sphere`` / ``tlas+*-tri``) — in
``multiround`` and ``singleround`` modes, including ``record_blended``
(per-ray blend lists extracted from the vectorized blend) and per-ray
fetch traces (:meth:`PacketTracer.trace_packet_recorded`, backed by
:mod:`repro.rt.tracerecord`: batched geometry passes plus a per-ray
control-flow reconstruction that emits scalar-identical
:class:`~repro.rt.recorder.RayTrace` streams).  GRTX-HW checkpointing
stays scalar-engine-only; :func:`packet_supported` tells callers when
to fall back, and :func:`resolve_engine` / :func:`packet_fallback_count`
make the fallback observable instead of silent.
"""

from __future__ import annotations

import threading
import time
import warnings
import numpy as np

from repro.obs import get_registry, span
from repro.obs import events as obs_events
from repro.obs import flight

from repro.bvh.flatten import (
    BLAS_SPHERE,
    PRIMS_GAUSSIANS,
    PRIMS_TRIANGLES,
    flatten,
    flattenable,
)
from repro.bvh.node import KIND_INTERNAL
from repro.rt.kernels import (
    Level,
    PacketResult,
    blend_range_end,
    empty_result,
    entering_hits,
    shade_and_blend,
    sphere_blas_hits,
    to_object_space,
)
from repro.rt.shading import SceneShading
from repro.rt.tracer import TraceConfig

#: Rays per internal traversal chunk; bounds the (rays, width, 3)
#: broadcast temporaries and the dense per-ray blend matrix to tens of
#: MB even for hit-heavy scenes.
_MAX_PACKET = 8192

#: Frame sizes from which ``engine="auto"`` prefers the wavefront
#: engine: breadth-first frontier batching needs enough rays per level
#: step to amortize its compaction passes; below this the packet
#: engine's per-tile DFS is the better schedule.
WAVEFRONT_MIN_RAYS = 4096

_INF = float("inf")


#: Proxy labels that build monolithic structures.
MONOLITHIC_PROXIES = ("20-tri", "80-tri", "custom")

#: Proxy labels that build two-level (GRTX-SW) structures.
TWO_LEVEL_PROXIES = ("tlas+sphere", "tlas+20-tri", "tlas+80-tri")

#: Every proxy label the packet engine covers — the single source for
#: request-level engine resolution, so the serving layer can never
#: drift from :func:`packet_supported`.
PACKET_PROXIES = MONOLITHIC_PROXIES + TWO_LEVEL_PROXIES


def packet_config_supported(config: TraceConfig) -> bool:
    """The config half of :func:`packet_supported`: GRTX-HW
    checkpointing stays on the scalar engine (``record_blended`` is
    packetized — the blend stage extracts per-ray blend lists)."""
    return not config.checkpointing


def packet_supported(structure, config: TraceConfig) -> bool:
    """Whether the packet engine covers this (structure, config) pair.

    Structural support is :func:`repro.bvh.flatten.flattenable` — the
    same predicate the scalar tracer's table setup uses — so both
    engines agree by construction on what a structure is.
    """
    return flattenable(structure) and packet_config_supported(config)


def fallback_reason(structure, config: TraceConfig) -> str | None:
    """Why this (structure, config) pair needs the scalar engine
    (``None`` when the packet engine covers it)."""
    if not flattenable(structure):
        return f"unsupported structure type {type(structure).__name__}"
    if config.checkpointing:
        return "checkpointing (GRTX-HW) is scalar-engine-only"
    return None


# ---------------------------------------------------------------------------
# Fallback observability: a process-wide counter plus a one-time warning
# per distinct reason, so an engine="packet" request silently degrading
# to the scalar tracer is visible to callers (the render server surfaces
# the counter as a gauge in its metric snapshots).

_fallback_lock = threading.Lock()
_fallback_count = 0
_warned_reasons: set[str] = set()


def note_packet_fallback(reason: str) -> None:
    """Record one packet->scalar degrade; warns once per reason."""
    global _fallback_count
    with _fallback_lock:
        _fallback_count += 1
        first = reason not in _warned_reasons
        _warned_reasons.add(reason)
    # Mirror into the obs registry: inside a pool worker the global
    # counter above dies with the process, but the registry delta rides
    # back to the parent with the task result (satellite fix — worker
    # fallbacks used to be silently lost).
    get_registry().add("rt.packet_fallbacks")
    # And into the flight ring with the *reason* — a counter says how
    # often, the black box says why and when relative to the incident.
    flight.record(obs_events.FALLBACK, "rt.packet_fallback", reason=reason)
    if first:
        warnings.warn(
            f"packet engine unavailable ({reason}); falling back to the "
            "scalar tracer", RuntimeWarning, stacklevel=3)


def packet_fallback_count() -> int:
    """Process-wide count of packet->scalar fallbacks so far."""
    with _fallback_lock:
        return _fallback_count


def reset_packet_fallbacks() -> None:
    """Reset the counter and re-arm the one-time warnings (tests)."""
    global _fallback_count
    with _fallback_lock:
        _fallback_count = 0
        _warned_reasons.clear()


def resolve_engine(engine: str, structure, config: TraceConfig,
                   n_rays: int | None = None) -> str:
    """The concrete engine a (structure, config, batch) will trace with.

    ``"auto"`` silently picks the best supported engine — that is its
    contract: the wavefront engine for frame-sized batches (``n_rays``
    at least :data:`WAVEFRONT_MIN_RAYS`; callers that know the batch
    size pass it), the packet engine otherwise, and the scalar tracer
    when the batched engines cannot cover the pair.  An explicit
    ``"packet"`` or ``"wavefront"`` that cannot be honored *degrades* to
    scalar: the degrade is counted (:func:`packet_fallback_count`) and
    warned about once per reason, because the caller asked for
    something they are not getting.  Unknown engine names are a
    fail-fast ``ValueError`` (a typo must not silently render with the
    wrong engine).
    """
    if engine == "scalar":
        return "scalar"
    if engine not in ("packet", "wavefront", "auto"):
        raise ValueError(
            f"unknown engine {engine!r}; valid engines are: "
            "scalar, packet, wavefront, auto")
    reason = fallback_reason(structure, config)
    if reason is not None:
        if engine in ("packet", "wavefront"):
            note_packet_fallback(reason)
        return "scalar"
    if engine == "auto":
        if n_rays is not None and n_rays >= WAVEFRONT_MIN_RAYS:
            return "wavefront"
        return "packet"
    return engine


# PacketResult and the shared computational kernels moved to
# repro.rt.kernels when the wavefront engine landed; re-exported here
# (see the module imports) so existing callers keep their import paths.
_Level = Level


class PacketTracer:
    """Traces ray packets through one flattened scene structure.

    Built once per (structure, shading, config) like the scalar
    :class:`~repro.rt.tracer.Tracer`; carries no per-packet state, so a
    single instance may trace any number of packets.  Accepts raw
    structures (flattened on construction, memoized) or an
    already-flattened :class:`~repro.bvh.flatten.FlatStructure`.
    """

    def __init__(
        self,
        structure,
        shading: SceneShading,
        config: TraceConfig | None = None,
    ) -> None:
        config = config or TraceConfig()
        if not packet_supported(structure, config):
            raise ValueError(
                "packet engine supports flattenable structures without "
                "checkpointing; use the scalar Tracer "
                f"({fallback_reason(structure, config)})")
        flat = flatten(structure)
        self.structure = structure
        self.flat = flat
        self.shading = shading
        self.config = config
        self._recorder = None
        self._root = _Level(flat.root)
        self._prims = flat.root_prims
        if flat.root_prims == PRIMS_TRIANGLES:
            mesh = flat.mesh
            self._v0, self._e1, self._e2 = mesh.v0, mesh.e1, mesh.e2
            self._owner = mesh.owner
        else:
            # Custom primitives or instances: leaf-ordered Gaussian ids.
            self._gids = flat.prim_gid
        if flat.two_level:
            # The instance table (leaf-ordered, aligned with prim_gid) —
            # bit-equal to the shading tables by construction, which the
            # test suite guards, so consuming it preserves scalar parity.
            self._inst_lin = flat.inst_w2o_linear
            self._inst_off = flat.inst_w2o_offset
            self._inst_blas = flat.inst_blas
            self._blas = flat.blas
            self._blas_levels = [
                _Level(b.bvh) if b.bvh is not None else None
                for b in flat.blas
            ]
            self._blas_roots = [
                b.bvh.root_box() if b.bvh is not None else None
                for b in flat.blas
            ]

    @property
    def triangle_proxy(self) -> bool:
        return self._prims == PRIMS_TRIANGLES

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def trace_packet(
        self,
        origins: np.ndarray,
        directions: np.ndarray,
        t_clip: np.ndarray | None = None,
    ) -> PacketResult:
        """Trace a bundle of rays to completion.

        ``t_clip`` optionally bounds each ray's traced segment (analytic
        scene objects truncating primaries), per ray; ``None`` means
        unbounded.
        """
        o = np.ascontiguousarray(origins, dtype=np.float64)
        d = np.ascontiguousarray(directions, dtype=np.float64)
        n = o.shape[0]
        if t_clip is None:
            t_clip = np.full(n, _INF)
        else:
            t_clip = np.asarray(t_clip, dtype=np.float64)
        if n == 0:
            return self._empty_result(0)
        with span("rt.packet.trace", rays=n):
            if n <= _MAX_PACKET:
                return self._trace_chunk(o, d, t_clip)
            parts = [
                self._trace_chunk(o[i:i + _MAX_PACKET], d[i:i + _MAX_PACKET],
                                  t_clip[i:i + _MAX_PACKET])
                for i in range(0, n, _MAX_PACKET)
            ]
            return PacketResult.concatenate(parts, self.config.record_blended)

    # ------------------------------------------------------------------
    # Pipeline stages
    # ------------------------------------------------------------------

    def _empty_result(self, n: int) -> PacketResult:
        return empty_result(n, self.config.record_blended)

    def _trace_chunk(self, o, d, t_clip) -> PacketResult:
        # Same degenerate-direction guard as the scalar tracer, so slab
        # tests agree bit-for-bit.
        safe = np.where(np.abs(d) < 1e-12, 1e-12, d)
        inv_d = 1.0 / safe

        # Per-phase timing at chunk granularity (one perf_counter pair
        # per stage, thousands of rays each — far off the hot path).
        # The same three-way split the scalar tracer reports, so the
        # rt.phase.* histograms compare engines directly.
        registry = get_registry()
        t_start = time.perf_counter()
        leaf_rays, leaf_refs = self._traverse(self._root, o, inv_d, t_clip)
        t_traversal = time.perf_counter()
        o2 = d2 = None
        if self._prims == PRIMS_TRIANGLES:
            ray_c, gid_c, t_proxy = self._leaf_triangles(
                o, d, leaf_rays, leaf_refs)
        elif self._prims == PRIMS_GAUSSIANS:
            ray_c, gid_c = self._leaf_customs(leaf_rays, leaf_refs)
            t_proxy = None
        else:
            ray_c, gid_c, t_proxy, o2, d2 = self._leaf_instances(
                o, d, t_clip, leaf_rays, leaf_refs)
        t_intersect = time.perf_counter()
        result = self._shade_and_blend(o, d, t_clip, ray_c, gid_c, t_proxy,
                                       o2=o2, d2=d2)
        t_blend = time.perf_counter()
        registry.observe("rt.phase.traversal", t_traversal - t_start)
        registry.observe("rt.phase.intersect", t_intersect - t_traversal)
        registry.observe("rt.phase.blend", t_blend - t_intersect)
        return result

    def _traverse(
        self,
        level: _Level,
        o: np.ndarray,
        inv_d: np.ndarray,
        t_clip: np.ndarray,
    ) -> tuple[list[np.ndarray], list[int]]:
        """Packet traversal of one flattened level: every reachable node
        visited at most once.

        The "rays" are whatever bundle the level is traversed with —
        camera rays for the root level, object-space (ray, instance)
        pairs for a shared mesh BLAS.  Returns the leaf visit list as
        parallel (active-ray subset, leaf record index) sequences.
        There is no t_max pruning: the blend stage applies early
        termination after all hits are known, which yields the identical
        blended prefix (termination is a monotone cutoff on sorted
        hits).
        """
        kinds = level.child_kind
        refs = level.child_ref
        los = level.child_lo
        his = level.child_hi
        leaf_rays: list[np.ndarray] = []
        leaf_refs: list[int] = []
        stack: list[tuple[int, np.ndarray]] = [
            (0, np.arange(o.shape[0], dtype=np.int64))
        ]
        while stack:
            node, rays = stack.pop()
            ro = o[rays]
            ri = inv_d[rays]
            t0 = (los[node][None, :, :] - ro[:, None, :]) * ri[:, None, :]
            t1 = (his[node][None, :, :] - ro[:, None, :]) * ri[:, None, :]
            tn = np.minimum(t0, t1).max(axis=2)
            tf = np.maximum(t0, t1).min(axis=2)
            # Same accept test as the scalar slab (t_min = 0 here; there
            # is no shrinking t_max).  Empty slots are masked by kind.
            hit = (tn <= tf) & (tf >= 0.0) & (tn <= t_clip[rays, None])
            hit &= (kinds[node] != 0)[None, :]
            for slot in np.nonzero(hit.any(axis=0))[0]:
                sub = rays[hit[:, slot]]
                if kinds[node, slot] == KIND_INTERNAL:
                    stack.append((int(refs[node, slot]), sub))
                else:
                    leaf_rays.append(sub)
                    leaf_refs.append(int(refs[node, slot]))
        return leaf_rays, leaf_refs

    def _traverse_log(
        self,
        level: _Level,
        o: np.ndarray,
        inv_d: np.ndarray,
        t_clip: np.ndarray,
    ) -> tuple[list, list[np.ndarray], list[int]]:
        """Recording variant of :meth:`_traverse`.

        Identical stack discipline and leaf output, but additionally
        returns the per-node visit log ``[(node, rays, tn, tf, hit),
        ...]`` with every visiting ray's child slab results for *all*
        slots and the accept mask — the geometry the packet trace
        recorder's per-ray control-flow reconstruction replays (visits
        with ``t_min = 0`` and no ``t_max`` are a superset of every
        tracing round's visits).
        """
        kinds = level.child_kind
        refs = level.child_ref
        los = level.child_lo
        his = level.child_hi
        visits: list = []
        leaf_rays: list[np.ndarray] = []
        leaf_refs: list[int] = []
        stack: list[tuple[int, np.ndarray]] = [
            (0, np.arange(o.shape[0], dtype=np.int64))
        ]
        while stack:
            node, rays = stack.pop()
            ro = o[rays]
            ri = inv_d[rays]
            t0 = (los[node][None, :, :] - ro[:, None, :]) * ri[:, None, :]
            t1 = (his[node][None, :, :] - ro[:, None, :]) * ri[:, None, :]
            tn = np.minimum(t0, t1).max(axis=2)
            tf = np.maximum(t0, t1).min(axis=2)
            hit = (tn <= tf) & (tf >= 0.0) & (tn <= t_clip[rays, None])
            hit &= (kinds[node] != 0)[None, :]
            visits.append((node, rays, tn, tf, hit))
            for slot in np.nonzero(hit.any(axis=0))[0]:
                sub = rays[hit[:, slot]]
                if kinds[node, slot] == KIND_INTERNAL:
                    stack.append((int(refs[node, slot]), sub))
                else:
                    leaf_rays.append(sub)
                    leaf_refs.append(int(refs[node, slot]))
        return visits, leaf_rays, leaf_refs

    def trace_packet_recorded(
        self,
        origins: np.ndarray,
        directions: np.ndarray,
        t_clip: np.ndarray | None = None,
        label: str = "primary",
    ):
        """Trace a bundle *and* record per-ray fetch traces.

        Returns ``(PacketResult, traces)`` where ``traces`` is one
        :class:`~repro.rt.recorder.RayTrace` per input ray, stream- and
        counter-equal to what the scalar tracer would have recorded (the
        timing model replays either interchangeably). The result's
        ``rounds`` array carries the reconstructed exact round counts.
        See :mod:`repro.rt.tracerecord` for the recording pipeline.
        """
        from repro.rt.tracerecord import PacketTraceRecorder

        if self._recorder is None:
            self._recorder = PacketTraceRecorder(self)
        return self._recorder.record(origins, directions, t_clip, label)

    @staticmethod
    def _leaf_pairs(
        level: _Level, leaf_rays: list[np.ndarray], leaf_refs: list[int]
    ) -> tuple[np.ndarray, np.ndarray]:
        """Flatten leaf visits into (ray index, ordered-primitive index)
        pair arrays — the input of the batched primitive tests."""
        ray_parts: list[np.ndarray] = []
        prim_parts: list[np.ndarray] = []
        starts = level.leaf_start
        counts = level.leaf_count
        for rays, ref in zip(leaf_rays, leaf_refs):
            start = int(starts[ref])
            count = int(counts[ref])
            prims = np.arange(start, start + count, dtype=np.int64)
            ray_parts.append(np.repeat(rays, count))
            prim_parts.append(np.tile(prims, rays.size))
        if not ray_parts:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty
        return np.concatenate(ray_parts), np.concatenate(prim_parts)

    #: Masked Möller–Trumbore (see :func:`repro.rt.kernels.entering_hits`);
    #: kept as a method because the trace recorder calls it on the tracer.
    _entering_hits = staticmethod(entering_hits)

    def _leaf_triangles(
        self,
        o: np.ndarray,
        d: np.ndarray,
        leaf_rays: list[np.ndarray],
        leaf_refs: list[int],
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Monolithic triangle leaves: masked Möller–Trumbore over every
        (ray, leaf triangle) pair.

        Returns per-(ray, gaussian) candidates with the proxy entry
        depth: backface-culled entering hits, reduced to the nearest
        entering triangle per Gaussian (the proxy meshes are convex, so
        a ray has at most one entering hit per Gaussian and the
        reduction is exact).
        """
        rp, tp = self._leaf_pairs(self._root, leaf_rays, leaf_refs)
        if rp.size == 0:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty, np.empty(0)

        sel, t = self._entering_hits(o[rp], d[rp], tp,
                                     self._v0, self._e1, self._e2)
        rp = rp[sel]
        gid = self._owner[tp[sel]]

        if rp.size == 0:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty, np.empty(0)
        # Nearest entering triangle per (ray, gaussian).
        order = np.lexsort((t, gid, rp))
        rp, gid, t = rp[order], gid[order], t[order]
        first = np.ones(rp.size, dtype=bool)
        first[1:] = (rp[1:] != rp[:-1]) | (gid[1:] != gid[:-1])
        return rp[first], gid[first], t[first]

    def _leaf_customs(
        self, leaf_rays: list[np.ndarray], leaf_refs: list[int]
    ) -> tuple[np.ndarray, np.ndarray]:
        """Custom-primitive leaves: candidates are the (ray, gaussian)
        pairs directly (each Gaussian lives in exactly one leaf)."""
        rp, pp = self._leaf_pairs(self._root, leaf_rays, leaf_refs)
        if rp.size == 0:
            return rp, pp
        return rp, self._gids[pp]

    # -- two-level -----------------------------------------------------

    #: World->object ray transform (see
    #: :func:`repro.rt.kernels.to_object_space`); the trace recorder
    #: calls it via the class.
    _to_object_space = staticmethod(to_object_space)

    def _leaf_instances(
        self,
        o: np.ndarray,
        d: np.ndarray,
        t_clip: np.ndarray,
        leaf_rays: list[np.ndarray],
        leaf_refs: list[int],
    ) -> tuple:
        """TLAS leaves: transform the live bundle through each instance
        and intersect every shared BLAS once with its instance group.

        Returns ``(ray_c, gid_c, t_proxy, o2, d2)``.  Candidates for the
        sphere BLAS carry no proxy depth (the exact ellipsoid entry
        distance is the sort key, as in the scalar instance path);
        mesh-BLAS candidates carry the nearest entering template-triangle
        depth (NaN marks exact-depth entries when BLAS kinds mix).
        ``o2``/``d2`` are the surviving candidates' object-space rays,
        handed to the shade stage so it does not re-transform.
        """
        empty = np.empty(0, dtype=np.int64)
        rp, pp = self._leaf_pairs(self._root, leaf_rays, leaf_refs)
        if rp.size == 0:
            return empty, empty, None, None, None
        gid = self._gids[pp]
        # Gather transforms from the flat instance table (leaf-ordered,
        # so `pp` indexes it directly) — bit-equal to the scalar
        # engine's shading tables, guarded by tests.
        o2, d2 = self._to_object_space(
            self._inst_lin[pp], self._inst_off[pp], o[rp], d[rp])

        sub_parts: list[np.ndarray] = []
        t_parts: list[np.ndarray] = []
        mesh_hit = False
        for slot, blas in enumerate(self._blas):
            if len(self._blas) > 1:
                group = np.nonzero(self._inst_blas[pp] == slot)[0]
                if group.size == 0:
                    continue
                o_s, d_s = o2[group], d2[group]
                clip_s = t_clip[rp[group]]
            else:
                # Single shared BLAS (every structure today): the whole
                # pair bundle is the group — no gather needed.
                group = None
                o_s, d_s = o2, d2
                clip_s = t_clip[rp]
            if blas.kind == BLAS_SPHERE:
                keep = self._sphere_blas_hits(o_s, d_s, clip_s)
                sub = np.nonzero(keep)[0] if group is None else group[keep]
                sub_parts.append(sub)
                t_parts.append(np.full(sub.size, np.nan))
            else:
                sel, t = self._mesh_blas_hits(slot, blas, o_s, d_s, clip_s)
                sub_parts.append(sel if group is None else group[sel])
                t_parts.append(t)
                mesh_hit = True
        if not sub_parts:
            return empty, empty, None, None, None
        sub = np.concatenate(sub_parts)
        # Sphere-only scenes carry no proxy depths (the exact ellipsoid
        # entry is the sort key); the surviving pairs' object-space rays
        # ride along so the shade stage need not re-transform them.
        t_proxy = np.concatenate(t_parts) if mesh_hit else None
        return rp[sub], gid[sub], t_proxy, o2[sub], d2[sub]

    #: Batched sphere-BLAS root-box test (see
    #: :func:`repro.rt.kernels.sphere_blas_hits`).
    _sphere_blas_hits = staticmethod(sphere_blas_hits)

    def _mesh_blas_hits(
        self, slot: int, blas, o2, d2, clip
    ) -> tuple[np.ndarray, np.ndarray]:
        """Traverse one shared mesh BLAS with a whole instance group.

        The pair bundle's object-space rays traverse the template BVH
        through the same generic level traversal as the root, then one
        masked Möller–Trumbore batch reduces to the nearest entering
        template triangle per pair — the scalar ``_traverse_blas``'s
        ``best``.  Returns ``(sel, t)``: indices into the input group
        with a hit, and the proxy depths (object-space t equals world t;
        the transform is affine in the ray parameter).
        """
        safe = np.where(np.abs(d2) < 1e-12, 1e-12, d2)
        inv_d2 = 1.0 / safe
        root_lo, root_hi = self._blas_roots[slot]
        t0 = (root_lo[None, :] - o2) * inv_d2
        t1 = (root_hi[None, :] - o2) * inv_d2
        tn = np.minimum(t0, t1).max(axis=1)
        tf = np.maximum(t0, t1).min(axis=1)
        live = np.nonzero((tn <= tf) & (tf >= 0.0) & (tn <= clip))[0]
        if live.size == 0:
            return np.empty(0, dtype=np.int64), np.empty(0)

        level = self._blas_levels[slot]
        o_l, d_l = o2[live], d2[live]
        leaf_rays, leaf_refs = self._traverse(level, o_l, inv_d2[live],
                                              clip[live])
        pr, tp = self._leaf_pairs(level, leaf_rays, leaf_refs)
        if pr.size == 0:
            return np.empty(0, dtype=np.int64), np.empty(0)
        mesh = blas.mesh
        sel, t = self._entering_hits(o_l[pr], d_l[pr], tp,
                                     mesh.v0, mesh.e1, mesh.e2)
        pr = pr[sel]
        if pr.size == 0:
            return np.empty(0, dtype=np.int64), np.empty(0)
        # Nearest entering template triangle per instance pair.
        order = np.lexsort((t, pr))
        pr, t = pr[order], t[order]
        first = np.ones(pr.size, dtype=bool)
        first[1:] = pr[1:] != pr[:-1]
        return live[pr[first]], t[first]

    # -- shade & blend -------------------------------------------------

    def _shade_and_blend(
        self,
        o: np.ndarray,
        d: np.ndarray,
        t_clip: np.ndarray,
        ray_c: np.ndarray,
        gid_c: np.ndarray,
        t_proxy: np.ndarray | None,
        o2: np.ndarray | None = None,
        d2: np.ndarray | None = None,
    ) -> PacketResult:
        """Canonical any-hit evaluation + front-to-back blend, batched
        (see :func:`repro.rt.kernels.shade_and_blend`; kept as a method
        because the trace recorder and the wavefront engine call it on
        the tracer)."""
        return shade_and_blend(self.shading, self.config, o, d, t_clip,
                               ray_c, gid_c, t_proxy, o2=o2, d2=d2)

    _blend_range_end = staticmethod(blend_range_end)
