"""Vectorized ray-packet tracing for the monolithic proxy path.

The scalar :class:`~repro.rt.tracer.Tracer` walks the BVH one ray at a
time in pure Python — the throughput bottleneck of the whole
reproduction.  Primary rays inside a tile are highly coherent, so this
module traces a whole tile's bundle *together*:

* **batched slab tests** — each BVH node is visited at most once per
  packet; its (up to ``width``) child boxes are slab-tested against every
  ray still active at that node in one numpy broadcast, and children are
  descended with the surviving ray subset;
* **masked Möller–Trumbore** — all (ray, triangle) candidate pairs
  produced by the leaf visits are intersected in one vectorized batch
  (one batched canonical ellipsoid test for the custom-primitive proxy);
* **vectorized front-to-back blending** — per-ray hit lists are sorted
  by ``(t, gaussian_id)``, transmittance is a row-wise ``cumprod``, and
  early ray termination is a monotone cutoff on the running
  transmittance, exactly mirroring the scalar blend loop's arithmetic.

Parity is the contract: for every supported configuration the packet
engine renders the same image as the scalar tracer to within 1e-9 per
channel, and the functional counters that stay meaningful without
per-round traversal — ``n_rays``, ``blended_total``,
``rays_terminated_early`` — agree exactly.  The equivalence rests on two
properties of the (tie-fixed) multi-round algorithm: each round's
k-buffer holds exactly the k closest remaining hits, so the blend
sequence across rounds is the globally ``(t, gid)``-sorted hit list
capped at ``max_rounds * k`` entries; and early termination is a
monotone threshold on the running transmittance, so it commutes with
computing all hits first.

Scope: monolithic structures (triangle and custom proxies) in
``multiround`` and ``singleround`` modes.  Two-level (GRTX-SW)
traversal, GRTX-HW checkpointing, per-ray fetch traces and
``record_blended`` are scalar-engine-only; :func:`packet_supported`
tells callers when to fall back.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.bvh.monolithic import MonolithicBVH
from repro.bvh.node import KIND_INTERNAL
from repro.gaussians.sh import sh_basis
from repro.rt.shading import ALPHA_MAX, ALPHA_MIN, SceneShading
from repro.rt.tracer import TraceConfig

#: Rays per internal traversal chunk; bounds the (rays, width, 3)
#: broadcast temporaries and the dense per-ray blend matrix to tens of
#: MB even for hit-heavy scenes.
_MAX_PACKET = 8192

_INF = float("inf")


#: Proxy labels that build monolithic structures — the packet engine's
#: structural scope (``tlas+*`` labels build two-level structures).
#: The single source for request-level fallback prediction, so the
#: serving layer can never drift from :func:`packet_supported`.
MONOLITHIC_PROXIES = ("20-tri", "80-tri", "custom")


def packet_config_supported(config: TraceConfig) -> bool:
    """The config half of :func:`packet_supported`: GRTX-HW
    checkpointing and ``record_blended`` (the training substrate needs
    per-ray blend lists) stay on the scalar engine."""
    return not config.checkpointing and not config.record_blended


def packet_supported(structure, config: TraceConfig) -> bool:
    """Whether the packet engine covers this (structure, config) pair.

    The packet tracer handles the monolithic proxy path in multiround
    and singleround modes; everything else falls back to the scalar
    engine.
    """
    return isinstance(structure, MonolithicBVH) and packet_config_supported(config)


@dataclass
class PacketResult:
    """Per-ray outcome arrays for one traced packet.

    ``colors`` is aligned with the input ray order.  ``rounds`` is the
    number of k-sized blend chunks the scalar multiround algorithm
    would need for the blended hits (1 for singleround) — an equivalent
    work measure, not a claim of per-round parity.
    """

    colors: np.ndarray
    transmittance: np.ndarray
    blended: np.ndarray
    terminated: np.ndarray
    rounds: np.ndarray
    #: Candidate (ray, gaussian) pairs that passed the canonical
    #: any-hit evaluation (each pair evaluated exactly once).
    anyhit_calls: int = 0
    #: Candidate pairs rejected by the canonical evaluation (proxy
    #: false positives, negligible alpha, entry behind the origin).
    false_positives: int = 0

    @property
    def n_rays(self) -> int:
        return self.colors.shape[0]


class PacketTracer:
    """Traces ray packets through one monolithic scene structure.

    Built once per (structure, shading, config) like the scalar
    :class:`~repro.rt.tracer.Tracer`; carries no per-packet state, so a
    single instance may trace any number of packets.
    """

    def __init__(
        self,
        structure: MonolithicBVH,
        shading: SceneShading,
        config: TraceConfig | None = None,
    ) -> None:
        config = config or TraceConfig()
        if not packet_supported(structure, config):
            raise ValueError(
                "packet engine supports monolithic structures without "
                "checkpointing or record_blended; use the scalar Tracer")
        self.structure = structure
        self.shading = shading
        self.config = config
        bvh = structure.bvh
        self._child_lo = np.ascontiguousarray(bvh.child_lo)
        self._child_hi = np.ascontiguousarray(bvh.child_hi)
        self._child_kind = bvh.child_kind
        self._child_ref = bvh.child_ref
        self._leaf_start = bvh.leaf_start
        self._leaf_count = bvh.leaf_count
        order = bvh.prim_order
        self.triangle_proxy = structure.is_triangle_proxy
        if self.triangle_proxy:
            # Leaf-contiguous triangle soup, same layout as the scalar
            # tracer's plain-list tables but kept as numpy for batching.
            self._v0 = np.ascontiguousarray(structure.tri_v0[order])
            self._e1 = np.ascontiguousarray(
                structure.tri_v1[order] - structure.tri_v0[order])
            self._e2 = np.ascontiguousarray(
                structure.tri_v2[order] - structure.tri_v0[order])
            self._owner = np.ascontiguousarray(
                structure.tri_gaussian[order].astype(np.int64))
        else:
            self._gids = np.ascontiguousarray(order.astype(np.int64))

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def trace_packet(
        self,
        origins: np.ndarray,
        directions: np.ndarray,
        t_clip: np.ndarray | None = None,
    ) -> PacketResult:
        """Trace a bundle of rays to completion.

        ``t_clip`` optionally bounds each ray's traced segment (analytic
        scene objects truncating primaries), per ray; ``None`` means
        unbounded.
        """
        o = np.ascontiguousarray(origins, dtype=np.float64)
        d = np.ascontiguousarray(directions, dtype=np.float64)
        n = o.shape[0]
        if t_clip is None:
            t_clip = np.full(n, _INF)
        else:
            t_clip = np.asarray(t_clip, dtype=np.float64)
        if n == 0:
            return self._empty_result(0)
        if n <= _MAX_PACKET:
            return self._trace_chunk(o, d, t_clip)
        parts = [
            self._trace_chunk(o[i:i + _MAX_PACKET], d[i:i + _MAX_PACKET],
                              t_clip[i:i + _MAX_PACKET])
            for i in range(0, n, _MAX_PACKET)
        ]
        return PacketResult(
            colors=np.concatenate([p.colors for p in parts]),
            transmittance=np.concatenate([p.transmittance for p in parts]),
            blended=np.concatenate([p.blended for p in parts]),
            terminated=np.concatenate([p.terminated for p in parts]),
            rounds=np.concatenate([p.rounds for p in parts]),
            anyhit_calls=sum(p.anyhit_calls for p in parts),
            false_positives=sum(p.false_positives for p in parts),
        )

    # ------------------------------------------------------------------
    # Pipeline stages
    # ------------------------------------------------------------------

    def _empty_result(self, n: int) -> PacketResult:
        return PacketResult(
            colors=np.zeros((n, 3)),
            transmittance=np.ones(n),
            blended=np.zeros(n, dtype=np.int64),
            terminated=np.zeros(n, dtype=bool),
            rounds=np.ones(n, dtype=np.int64),
        )

    def _trace_chunk(self, o, d, t_clip) -> PacketResult:
        # Same degenerate-direction guard as the scalar tracer, so slab
        # tests agree bit-for-bit.
        safe = np.where(np.abs(d) < 1e-12, 1e-12, d)
        inv_d = 1.0 / safe

        leaf_rays, leaf_refs = self._traverse(o, inv_d, t_clip)
        if self.triangle_proxy:
            ray_c, gid_c, t_proxy = self._leaf_triangles(
                o, d, leaf_rays, leaf_refs)
        else:
            ray_c, gid_c = self._leaf_customs(leaf_rays, leaf_refs)
            t_proxy = None
        return self._shade_and_blend(o, d, t_clip, ray_c, gid_c, t_proxy)

    def _traverse(
        self, o: np.ndarray, inv_d: np.ndarray, t_clip: np.ndarray
    ) -> tuple[list[np.ndarray], list[int]]:
        """Packet traversal: every reachable node visited at most once.

        Returns the leaf visit list as parallel (active-ray subset, leaf
        record index) sequences.  There is no t_max pruning: the blend
        stage applies early termination after all hits are known, which
        yields the identical blended prefix (termination is a monotone
        cutoff on sorted hits).
        """
        kinds = self._child_kind
        refs = self._child_ref
        los = self._child_lo
        his = self._child_hi
        leaf_rays: list[np.ndarray] = []
        leaf_refs: list[int] = []
        stack: list[tuple[int, np.ndarray]] = [
            (0, np.arange(o.shape[0], dtype=np.int64))
        ]
        while stack:
            node, rays = stack.pop()
            ro = o[rays]
            ri = inv_d[rays]
            t0 = (los[node][None, :, :] - ro[:, None, :]) * ri[:, None, :]
            t1 = (his[node][None, :, :] - ro[:, None, :]) * ri[:, None, :]
            tn = np.minimum(t0, t1).max(axis=2)
            tf = np.maximum(t0, t1).min(axis=2)
            # Same accept test as the scalar slab (t_min = 0 here; there
            # is no shrinking t_max).  Empty slots are masked by kind.
            hit = (tn <= tf) & (tf >= 0.0) & (tn <= t_clip[rays, None])
            hit &= (kinds[node] != 0)[None, :]
            for slot in np.nonzero(hit.any(axis=0))[0]:
                sub = rays[hit[:, slot]]
                if kinds[node, slot] == KIND_INTERNAL:
                    stack.append((int(refs[node, slot]), sub))
                else:
                    leaf_rays.append(sub)
                    leaf_refs.append(int(refs[node, slot]))
        return leaf_rays, leaf_refs

    def _leaf_pairs(
        self, leaf_rays: list[np.ndarray], leaf_refs: list[int]
    ) -> tuple[np.ndarray, np.ndarray]:
        """Flatten leaf visits into (ray index, ordered-primitive index)
        pair arrays — the input of the batched primitive tests."""
        ray_parts: list[np.ndarray] = []
        prim_parts: list[np.ndarray] = []
        starts = self._leaf_start
        counts = self._leaf_count
        for rays, ref in zip(leaf_rays, leaf_refs):
            start = int(starts[ref])
            count = int(counts[ref])
            prims = np.arange(start, start + count, dtype=np.int64)
            ray_parts.append(np.repeat(rays, count))
            prim_parts.append(np.tile(prims, rays.size))
        if not ray_parts:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty
        return np.concatenate(ray_parts), np.concatenate(prim_parts)

    def _leaf_triangles(
        self,
        o: np.ndarray,
        d: np.ndarray,
        leaf_rays: list[np.ndarray],
        leaf_refs: list[int],
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Masked Möller–Trumbore over every (ray, leaf triangle) pair.

        Returns per-(ray, gaussian) candidates with the proxy entry
        depth: backface-culled entering hits, reduced to the nearest
        entering triangle per Gaussian (the proxy meshes are convex, so
        a ray has at most one entering hit per Gaussian and the
        reduction is exact).
        """
        rp, tp = self._leaf_pairs(leaf_rays, leaf_refs)
        if rp.size == 0:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty, np.empty(0)

        dp = d[rp]
        e2 = self._e2[tp]
        pv = np.cross(dp, e2)
        e1 = self._e1[tp]
        det = e1[:, 0] * pv[:, 0] + e1[:, 1] * pv[:, 1] + e1[:, 2] * pv[:, 2]
        # Entering (backface-culled) hits only, as in the scalar loop.
        front = det <= -1e-12
        rp, tp = rp[front], tp[front]
        dp, e2, pv, det = dp[front], e2[front], pv[front], det[front]
        e1 = e1[front]

        inv_det = 1.0 / det
        tv = o[rp] - self._v0[tp]
        u = (tv[:, 0] * pv[:, 0] + tv[:, 1] * pv[:, 1]
             + tv[:, 2] * pv[:, 2]) * inv_det
        qv = np.cross(tv, e1)
        v = (dp[:, 0] * qv[:, 0] + dp[:, 1] * qv[:, 1]
             + dp[:, 2] * qv[:, 2]) * inv_det
        t = (e2[:, 0] * qv[:, 0] + e2[:, 1] * qv[:, 1]
             + e2[:, 2] * qv[:, 2]) * inv_det
        keep = (u >= 0.0) & (u <= 1.0) & (v >= 0.0) & (u + v <= 1.0) & (t > 0.0)
        rp, t = rp[keep], t[keep]
        gid = self._owner[tp[keep]]

        if rp.size == 0:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty, np.empty(0)
        # Nearest entering triangle per (ray, gaussian).
        order = np.lexsort((t, gid, rp))
        rp, gid, t = rp[order], gid[order], t[order]
        first = np.ones(rp.size, dtype=bool)
        first[1:] = (rp[1:] != rp[:-1]) | (gid[1:] != gid[:-1])
        return rp[first], gid[first], t[first]

    def _leaf_customs(
        self, leaf_rays: list[np.ndarray], leaf_refs: list[int]
    ) -> tuple[np.ndarray, np.ndarray]:
        """Custom-primitive leaves: candidates are the (ray, gaussian)
        pairs directly (each Gaussian lives in exactly one leaf)."""
        rp, pp = self._leaf_pairs(leaf_rays, leaf_refs)
        if rp.size == 0:
            return rp, pp
        return rp, self._gids[pp]

    def _shade_and_blend(
        self,
        o: np.ndarray,
        d: np.ndarray,
        t_clip: np.ndarray,
        ray_c: np.ndarray,
        gid_c: np.ndarray,
        t_proxy: np.ndarray | None,
    ) -> PacketResult:
        """Canonical any-hit evaluation + front-to-back blend, batched.

        Mirrors :meth:`SceneShading.evaluate_hit` and the scalar blend
        loop expression-for-expression so the per-ray arithmetic (and
        therefore the early-termination decision) matches the scalar
        engine.
        """
        n = o.shape[0]
        config = self.config
        result = self._empty_result(n)
        if ray_c.size == 0:
            return result
        shading = self.shading

        # Object-space ray per candidate (row-expanded 3x3 matvec, same
        # accumulation order as `linear @ vec`).
        lin = shading.w2o_linear[gid_c]
        off = shading.w2o_offset[gid_c]
        oc = o[ray_c]
        dc = d[ray_c]
        o2 = np.empty_like(oc)
        d2 = np.empty_like(dc)
        for axis in range(3):
            o2[:, axis] = (lin[:, axis, 0] * oc[:, 0]
                           + lin[:, axis, 1] * oc[:, 1]
                           + lin[:, axis, 2] * oc[:, 2]) + off[:, axis]
            d2[:, axis] = (lin[:, axis, 0] * dc[:, 0]
                           + lin[:, axis, 1] * dc[:, 1]
                           + lin[:, axis, 2] * dc[:, 2])
        dd = d2[:, 0] * d2[:, 0] + d2[:, 1] * d2[:, 1] + d2[:, 2] * d2[:, 2]
        od = o2[:, 0] * d2[:, 0] + o2[:, 1] * d2[:, 1] + o2[:, 2] * d2[:, 2]
        oo = o2[:, 0] * o2[:, 0] + o2[:, 1] * o2[:, 1] + o2[:, 2] * o2[:, 2]
        valid = dd >= 1e-30
        dd_safe = np.where(valid, dd, 1.0)
        min_sq = oo - od * od / dd_safe
        valid &= min_sq <= 1.0
        t_entry = (-od / dd_safe) - np.sqrt(
            np.maximum((1.0 - min_sq) / dd_safe, 0.0))
        valid &= t_entry > 0.0
        alpha = shading.opacities[gid_c] * np.exp(
            (-0.5 * shading.kappa_sq) * min_sq)
        valid &= alpha >= ALPHA_MIN
        false_positives = int(ray_c.size - np.count_nonzero(valid))

        t_hit = t_entry if t_proxy is None else t_proxy
        valid &= t_hit <= t_clip[ray_c]
        rays = ray_c[valid]
        if rays.size == 0:
            result.false_positives = false_positives
            return result
        gids = gid_c[valid]
        ts = t_hit[valid]
        alphas = np.minimum(alpha[valid], ALPHA_MAX)

        # Global per-ray (t, gid) order — the multiround blend sequence
        # (each round's k-buffer is exactly the k closest remaining
        # hits), and literally the singleround sort.
        order = np.lexsort((gids, ts, rays))
        rays, gids, alphas = rays[order], gids[order], alphas[order]
        result.anyhit_calls = int(rays.size)
        result.false_positives = false_positives
        counts = np.bincount(rays, minlength=n)
        starts = np.zeros(n, dtype=np.int64)
        np.cumsum(counts[:-1], out=starts[1:])
        col = np.arange(rays.size, dtype=np.int64) - starts[rays]
        if config.mode == "multiround":
            # The scalar loop runs at most max_rounds rounds of k blends.
            cap = config.max_rounds * config.k
            within = col < cap
            rays, gids, alphas, col = (
                rays[within], gids[within], alphas[within], col[within])
            counts = np.minimum(counts, cap)
            if rays.size == 0:
                return result

        # Pair-slice boundaries per ray (pairs are sorted by ray, so
        # each contiguous ray range maps to one contiguous pair slice).
        pair_starts = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(counts, out=pair_starts[1:])

        colors = np.zeros((n, 3))
        transmittance = np.ones(n)
        blended = np.zeros(n, dtype=np.int64)
        basis = sh_basis(d, shading._sh_degree)
        # The blend works on dense (rays, max hits) matrices; process
        # contiguous ray ranges whose matrix stays under the element
        # budget so a hit-heavy (especially uncapped singleround) scene
        # cannot balloon the allocation.
        r0 = 0
        while r0 < n:
            r1 = self._blend_range_end(counts, r0)
            p0, p1 = int(pair_starts[r0]), int(pair_starts[r1])
            if p0 == p1:
                r0 = r1
                continue
            rr = rays[p0:p1] - r0
            cc = col[p0:p1]
            aa = alphas[p0:p1]
            rows = r1 - r0
            width = int(counts[r0:r1].max())
            one_minus = np.ones((rows, width))
            one_minus[rr, cc] = 1.0 - aa
            # Row-wise cumprod = the scalar loop's sequential
            # `transmittance *= 1 - alpha`, bit for bit.
            t_cum = np.cumprod(one_minus, axis=1)
            prev_t = np.empty_like(t_cum)
            prev_t[:, 0] = 1.0
            prev_t[:, 1:] = t_cum[:, :-1]
            prev_pair = prev_t[rr, cc]
            # Entry i blends iff no earlier entry dropped transmittance
            # below the threshold; the running product is monotone
            # decreasing, so the blended prefix is a simple cutoff.
            blend = prev_pair >= config.transmittance_min
            rr_b = rr[blend]
            aa_b, prev_b = aa[blend], prev_pair[blend]

            color = np.einsum("pc,pcd->pd", basis[rays[p0:p1][blend]],
                              shading.sh[gids[p0:p1][blend]]) + 0.5
            np.clip(color, 0.0, None, out=color)
            contrib = (prev_b * aa_b)[:, None] * color
            # np.add.at accumulates in pair order (sorted by ray, then
            # t): the same sequential color accumulation as the scalar
            # loop.
            np.add.at(colors[r0:r1], rr_b, contrib)

            n_blend = np.bincount(rr_b, minlength=rows)
            blended[r0:r1] = n_blend
            idx = np.nonzero(n_blend)[0]
            transmittance[r0 + idx] = t_cum[idx, n_blend[idx] - 1]
            r0 = r1

        result.colors = colors
        result.transmittance = transmittance
        result.blended = blended
        result.terminated = transmittance < config.transmittance_min
        if config.mode == "multiround":
            result.rounds = np.maximum(-(-blended // config.k), 1)
        else:
            result.rounds = np.ones(n, dtype=np.int64)
        return result

    @staticmethod
    def _blend_range_end(counts: np.ndarray, r0: int,
                         budget: int = 2_000_000) -> int:
        """End (exclusive) of the largest contiguous ray range starting
        at ``r0`` whose dense blend matrix — rows x the range's max hit
        count — stays within ``budget`` elements (16 MB of float64).
        Always includes at least one ray so progress is guaranteed."""
        n = counts.shape[0]
        width = 0
        r = r0
        while r < n:
            w = int(counts[r])
            if w > width:
                if r > r0 and (r - r0 + 1) * w > budget:
                    break
                width = w
            elif width and (r - r0 + 1) * width > budget:
                break
            r += 1
        return r
