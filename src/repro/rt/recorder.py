"""Fetch-trace recording for the timing model.

The functional tracers emit, per ray and per tracing round, the exact
sequence of BVH node fetches (byte address, size, kind) together with the
intersection-test work done at each node. :mod:`repro.hwsim` replays these
streams through its cache hierarchy and RT-unit model.

A round's events live in two flat ``array('q')`` streams so that millions
of events stay cheap to store *and* cheap to consume:

* ``stream`` — one fixed-width record of :data:`RECORD_FIELDS` int64
  words per fetch::

      [addr, nbytes, kind, box_tests, prim_tests, prim_kind, n_prefetch]

* ``pf`` — the prefetch ``(addr, nbytes)`` pairs of all records,
  concatenated in record order (record ``i`` owns the next
  ``n_prefetch[i]`` pairs).

The fixed-width layout is what makes zero-copy consumption possible:
:meth:`RoundTrace.events_view` and :meth:`RoundTrace.prefetch_view`
reinterpret the buffers as numpy arrays (``np.frombuffer``) without
copying or per-event Python iteration — the vectorized replay in
:mod:`repro.hwsim.replay` is built on these views. :meth:`iter_events`
remains as the per-event compatibility API.

``prefetch`` entries model the sibling-node prefetcher the paper adds to
Vulkan-Sim to match real-GPU L1 hit rates (Section V-A): when an internal
node's box tests identify the intersected children, those children's
addresses are staged into the L1.
"""

from __future__ import annotations

from array import array

import numpy as np

FETCH_INTERNAL = 1
FETCH_LEAF = 2

PRIM_NONE = 0
PRIM_TRI = 1
PRIM_SPHERE = 2
PRIM_CUSTOM = 3
PRIM_TRANSFORM = 4

#: int64 words per fixed-width fetch record in ``RoundTrace.stream``.
RECORD_FIELDS = 7

_EMPTY_EVENTS = np.empty((0, RECORD_FIELDS), dtype=np.int64)
_EMPTY_PAIRS = np.empty((0, 2), dtype=np.int64)


class RoundTrace:
    """Events and counters for one ray x one tracing round."""

    __slots__ = (
        "stream",
        "pf",
        "anyhit_calls",
        "kbuffer_ops",
        "false_positives",
        "blended",
        "checkpoints_written",
        "evictions_written",
        "_ev_cache",
        "_pf_cache",
    )

    def __init__(self) -> None:
        self.stream = array("q")
        self.pf = array("q")
        self._ev_cache: np.ndarray | None = None
        self._pf_cache: np.ndarray | None = None
        self.anyhit_calls = 0
        self.kbuffer_ops = 0
        self.false_positives = 0
        self.blended = 0
        self.checkpoints_written = 0
        self.evictions_written = 0

    def fetch(
        self,
        addr: int,
        nbytes: int,
        kind: int,
        box_tests: int = 0,
        prim_tests: int = 0,
        prim_kind: int = PRIM_NONE,
        prefetch: list[tuple[int, int]] | None = None,
    ) -> None:
        """Record one node fetch and the work performed at that node."""
        if prefetch:
            self.stream.extend((addr, nbytes, kind, box_tests, prim_tests,
                                prim_kind, len(prefetch)))
            pf = self.pf
            for pair in prefetch:
                pf.extend(pair)
        else:
            self.stream.extend((addr, nbytes, kind, box_tests, prim_tests,
                                prim_kind, 0))

    def __getstate__(self):
        # Ship only the streams and counters: the memoized views are
        # per-process buffer aliases (pickling would copy them), and a
        # fresh instance re-derives them on first use.
        return (self.stream, self.pf, self.anyhit_calls, self.kbuffer_ops,
                self.false_positives, self.blended,
                self.checkpoints_written, self.evictions_written)

    def __setstate__(self, state):
        (self.stream, self.pf, self.anyhit_calls, self.kbuffer_ops,
         self.false_positives, self.blended,
         self.checkpoints_written, self.evictions_written) = state
        self._ev_cache = None
        self._pf_cache = None

    def events_view(self) -> np.ndarray:
        """Zero-copy ``(n_fetches, RECORD_FIELDS)`` int64 view of the
        record stream (columns: addr, nbytes, kind, box_tests,
        prim_tests, prim_kind, n_prefetch).

        Memoized: traces are write-then-read, and the first view pins
        the underlying buffer — a later :meth:`fetch` on a viewed round
        raises ``BufferError`` rather than silently going stale.
        """
        if not len(self.stream):
            return _EMPTY_EVENTS
        cached = self._ev_cache
        if cached is not None:
            return cached
        view = np.frombuffer(self.stream, dtype=np.int64).reshape(
            -1, RECORD_FIELDS)
        self._ev_cache = view
        return view

    def prefetch_view(self) -> np.ndarray:
        """Zero-copy ``(n_pairs, 2)`` int64 view of the prefetch pairs,
        in record order; record ``i``'s pairs start at
        ``events_view()[:i, 6].sum()``. Memoized like
        :meth:`events_view`."""
        if not len(self.pf):
            return _EMPTY_PAIRS
        cached = self._pf_cache
        if cached is not None:
            return cached
        view = np.frombuffer(self.pf, dtype=np.int64).reshape(-1, 2)
        self._pf_cache = view
        return view

    def iter_events(self):
        """Yield ``(addr, nbytes, kind, box, prim, prim_kind, prefetch)``."""
        stream = self.stream
        pf = self.pf
        j = 0
        for i in range(0, len(stream), RECORD_FIELDS):
            addr, nbytes, kind, box, prim, prim_kind, n_pf = (
                stream[i : i + RECORD_FIELDS])
            prefetch = []
            for _ in range(n_pf):
                prefetch.append((pf[j], pf[j + 1]))
                j += 2
            yield addr, nbytes, kind, box, prim, prim_kind, prefetch

    @property
    def n_fetches(self) -> int:
        return len(self.stream) // RECORD_FIELDS


class RayTrace:
    """Whole-render trace for one ray.

    Tracks per-ray unique node sets across rounds (Figure 7's unique vs
    total redundancy measurement) plus checkpoint/eviction high-water
    marks (Figure 20's buffer sizing).
    """

    __slots__ = (
        "rounds",
        "unique_internal",
        "unique_leaf",
        "total_internal",
        "total_leaf",
        "ckpt_high_water",
        "evict_high_water",
        "label",
    )

    def __init__(self, label: str = "primary") -> None:
        self.rounds: list[RoundTrace] = []
        self.unique_internal: set[int] = set()
        self.unique_leaf: set[int] = set()
        self.total_internal = 0
        self.total_leaf = 0
        self.ckpt_high_water = 0
        self.evict_high_water = 0
        self.label = label

    def begin_round(self) -> RoundTrace:
        trace = RoundTrace()
        self.rounds.append(trace)
        return trace

    def note_fetch(self, addr: int, kind: int) -> None:
        """Update the unique/total visit statistics for one fetch."""
        if kind == FETCH_INTERNAL:
            self.total_internal += 1
            self.unique_internal.add(addr)
        else:
            self.total_leaf += 1
            self.unique_leaf.add(addr)

    @property
    def n_rounds(self) -> int:
        return len(self.rounds)

    @property
    def total_fetches(self) -> int:
        return self.total_internal + self.total_leaf

    @property
    def unique_fetches(self) -> int:
        return len(self.unique_internal) + len(self.unique_leaf)

    def fetch_multiset(self) -> dict[tuple[int, int], int]:
        """Whole-ray ``(addr, kind) -> count`` fetch multiset (the
        engine-parity invariant the trace tests compare)."""
        counts: dict[tuple[int, int], int] = {}
        for rnd in self.rounds:
            events = rnd.events_view()
            for addr, kind in zip(events[:, 0].tolist(),
                                  events[:, 2].tolist()):
                key = (addr, kind)
                counts[key] = counts.get(key, 0) + 1
        return counts
