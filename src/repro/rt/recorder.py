"""Fetch-trace recording for the timing model.

The functional tracer emits, per ray and per tracing round, the exact
sequence of BVH node fetches (byte address, size, kind) together with the
intersection-test work done at each node. :mod:`repro.hwsim` replays these
streams through its cache hierarchy and RT-unit model.

The stream is a flat ``array('q')`` of int64 records to keep the memory
cost of millions of events tolerable in pure Python:

    [addr, nbytes, kind, box_tests, prim_tests, prim_kind,
     n_prefetch, pf_addr0, pf_bytes0, pf_addr1, pf_bytes1, ...]

``prefetch`` entries model the sibling-node prefetcher the paper adds to
Vulkan-Sim to match real-GPU L1 hit rates (Section V-A): when an internal
node's box tests identify the intersected children, those children's
addresses are staged into the L1.
"""

from __future__ import annotations

from array import array

FETCH_INTERNAL = 1
FETCH_LEAF = 2

PRIM_NONE = 0
PRIM_TRI = 1
PRIM_SPHERE = 2
PRIM_CUSTOM = 3
PRIM_TRANSFORM = 4


class RoundTrace:
    """Events and counters for one ray x one tracing round."""

    __slots__ = (
        "stream",
        "anyhit_calls",
        "kbuffer_ops",
        "false_positives",
        "blended",
        "checkpoints_written",
        "evictions_written",
    )

    def __init__(self) -> None:
        self.stream = array("q")
        self.anyhit_calls = 0
        self.kbuffer_ops = 0
        self.false_positives = 0
        self.blended = 0
        self.checkpoints_written = 0
        self.evictions_written = 0

    def fetch(
        self,
        addr: int,
        nbytes: int,
        kind: int,
        box_tests: int = 0,
        prim_tests: int = 0,
        prim_kind: int = PRIM_NONE,
        prefetch: list[tuple[int, int]] | None = None,
    ) -> None:
        """Record one node fetch and the work performed at that node."""
        stream = self.stream
        if prefetch:
            stream.extend((addr, nbytes, kind, box_tests, prim_tests, prim_kind,
                           len(prefetch)))
            for pair in prefetch:
                stream.extend(pair)
        else:
            stream.extend((addr, nbytes, kind, box_tests, prim_tests, prim_kind, 0))

    def iter_events(self):
        """Yield ``(addr, nbytes, kind, box, prim, prim_kind, prefetch)``."""
        stream = self.stream
        i = 0
        n = len(stream)
        while i < n:
            addr, nbytes, kind, box, prim, prim_kind, n_pf = stream[i : i + 7]
            i += 7
            prefetch = []
            for _ in range(n_pf):
                prefetch.append((stream[i], stream[i + 1]))
                i += 2
            yield addr, nbytes, kind, box, prim, prim_kind, prefetch

    @property
    def n_fetches(self) -> int:
        return sum(1 for _ in self.iter_events())


class RayTrace:
    """Whole-render trace for one ray.

    Tracks per-ray unique node sets across rounds (Figure 7's unique vs
    total redundancy measurement) plus checkpoint/eviction high-water
    marks (Figure 20's buffer sizing).
    """

    __slots__ = (
        "rounds",
        "unique_internal",
        "unique_leaf",
        "total_internal",
        "total_leaf",
        "ckpt_high_water",
        "evict_high_water",
        "label",
    )

    def __init__(self, label: str = "primary") -> None:
        self.rounds: list[RoundTrace] = []
        self.unique_internal: set[int] = set()
        self.unique_leaf: set[int] = set()
        self.total_internal = 0
        self.total_leaf = 0
        self.ckpt_high_water = 0
        self.evict_high_water = 0
        self.label = label

    def begin_round(self) -> RoundTrace:
        trace = RoundTrace()
        self.rounds.append(trace)
        return trace

    def note_fetch(self, addr: int, kind: int) -> None:
        """Update the unique/total visit statistics for one fetch."""
        if kind == FETCH_INTERNAL:
            self.total_internal += 1
            self.unique_internal.add(addr)
        else:
            self.total_leaf += 1
            self.unique_leaf.add(addr)

    @property
    def n_rounds(self) -> int:
        return len(self.rounds)

    @property
    def total_fetches(self) -> int:
        return self.total_internal + self.total_leaf

    @property
    def unique_fetches(self) -> int:
        return len(self.unique_internal) + len(self.unique_leaf)
