"""Shared vectorized kernels for the batched tracing engines.

The packet engine (:mod:`repro.rt.packet`, depth-first per-node
dispatch) and the wavefront engine (:mod:`repro.rt.wavefront`,
breadth-first frontier dispatch) differ only in *how they schedule*
traversal work.  Everything that actually touches geometry or color —
the slab arithmetic's input conventions, masked Möller–Trumbore,
world→object ray transforms, the sphere-BLAS root-box test, the
canonical any-hit evaluation and the front-to-back blend — is identical
arithmetic, extracted here so the engines cannot drift apart on it.

Every kernel is elementwise over its batch (no cross-element reductions
except the documented sorted ones), which is what makes the engines
bit-identical to each other and to the scalar tracer regardless of how
candidates were batched or ordered: IEEE float ops are deterministic
per element, and the blend stage re-sorts candidates by the fully
determining key ``(ray, t, gid)`` before any order-sensitive
accumulation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.bvh.node import FlatBVH
from repro.gaussians.sh import sh_basis
from repro.rt.shading import ALPHA_MAX, ALPHA_MIN

_INF = float("inf")


@dataclass
class PacketResult:
    """Per-ray outcome arrays for one traced packet.

    ``colors`` is aligned with the input ray order.  ``rounds`` is the
    number of k-sized blend chunks the scalar multiround algorithm
    would need for the blended hits (1 for singleround) — an equivalent
    work measure, not a claim of per-round parity.
    """

    colors: np.ndarray
    transmittance: np.ndarray
    blended: np.ndarray
    terminated: np.ndarray
    rounds: np.ndarray
    #: Candidate (ray, gaussian) pairs that passed the canonical
    #: any-hit evaluation (each pair evaluated exactly once).
    anyhit_calls: int = 0
    #: Candidate pairs rejected by the canonical evaluation (proxy
    #: false positives, negligible alpha, entry behind the origin).
    false_positives: int = 0
    #: Per-ray ``(gaussian_id, alpha, t)`` blend lists in blend order,
    #: populated when ``TraceConfig.record_blended`` is set — the same
    #: lists the scalar tracer's ``RayOutcome.blend_records`` carries
    #: (the training substrate's backward pass consumes them).
    blend_records: list[list[tuple[int, float, float]]] | None = None

    @property
    def n_rays(self) -> int:
        return self.colors.shape[0]

    @classmethod
    def concatenate(cls, parts: list["PacketResult"],
                    record_blended: bool) -> "PacketResult":
        """Merge chunked results back into one, in chunk order (shared
        by the plain and recorded tracing paths, so a new field cannot
        be merged in one and dropped in the other)."""
        records = None
        if record_blended:
            records = []
            for p in parts:
                records.extend(p.blend_records or [])
        return cls(
            colors=np.concatenate([p.colors for p in parts]),
            transmittance=np.concatenate([p.transmittance for p in parts]),
            blended=np.concatenate([p.blended for p in parts]),
            terminated=np.concatenate([p.terminated for p in parts]),
            rounds=np.concatenate([p.rounds for p in parts]),
            anyhit_calls=sum(p.anyhit_calls for p in parts),
            false_positives=sum(p.false_positives for p in parts),
            blend_records=records,
        )


class Level:
    """Contiguous traversal arrays for one flattened BVH level."""

    __slots__ = ("child_lo", "child_hi", "child_kind", "child_ref",
                 "leaf_start", "leaf_count")

    def __init__(self, bvh: FlatBVH) -> None:
        self.child_lo = np.ascontiguousarray(bvh.child_lo)
        self.child_hi = np.ascontiguousarray(bvh.child_hi)
        self.child_kind = bvh.child_kind
        self.child_ref = bvh.child_ref
        self.leaf_start = bvh.leaf_start
        self.leaf_count = bvh.leaf_count


def empty_result(n: int, record_blended: bool) -> PacketResult:
    """A zero-hit result for ``n`` rays."""
    return PacketResult(
        colors=np.zeros((n, 3)),
        transmittance=np.ones(n),
        blended=np.zeros(n, dtype=np.int64),
        terminated=np.zeros(n, dtype=bool),
        rounds=np.ones(n, dtype=np.int64),
        blend_records=([[] for _ in range(n)] if record_blended else None),
    )


def entering_hits(
    op: np.ndarray,
    dp: np.ndarray,
    tp: np.ndarray,
    v0_arr: np.ndarray,
    e1_arr: np.ndarray,
    e2_arr: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Masked Möller–Trumbore over (ray, triangle) candidate pairs.

    ``op``/``dp`` are the per-pair ray origins and directions (world
    space for monolithic leaves, object space for a shared-BLAS
    bundle); ``tp`` indexes the leaf-ordered triangle tables.
    Returns ``(sel, t)``: indices into the input pair arrays with a
    backface-culled entering hit in front of the origin, and their
    hit distances — expression-for-expression the scalar loops'
    arithmetic.
    """
    e2 = e2_arr[tp]
    pv = np.cross(dp, e2)
    e1 = e1_arr[tp]
    det = e1[:, 0] * pv[:, 0] + e1[:, 1] * pv[:, 1] + e1[:, 2] * pv[:, 2]
    # Entering (backface-culled) hits only, as in the scalar loop.
    front = np.nonzero(det <= -1e-12)[0]
    dp, e2, pv, det = dp[front], e2[front], pv[front], det[front]
    e1 = e1[front]

    inv_det = 1.0 / det
    tv = op[front] - v0_arr[tp[front]]
    u = (tv[:, 0] * pv[:, 0] + tv[:, 1] * pv[:, 1]
         + tv[:, 2] * pv[:, 2]) * inv_det
    qv = np.cross(tv, e1)
    v = (dp[:, 0] * qv[:, 0] + dp[:, 1] * qv[:, 1]
         + dp[:, 2] * qv[:, 2]) * inv_det
    t = (e2[:, 0] * qv[:, 0] + e2[:, 1] * qv[:, 1]
         + e2[:, 2] * qv[:, 2]) * inv_det
    keep = (u >= 0.0) & (u <= 1.0) & (v >= 0.0) & (u + v <= 1.0) & (t > 0.0)
    return front[keep], t[keep]


def to_object_space(lin, off, oc, dc):
    """Per-pair world->object ray transform (row-expanded 3x3
    matvec, same accumulation order as the scalar ``linear @ vec``)."""
    o2 = np.empty_like(oc)
    d2 = np.empty_like(dc)
    for axis in range(3):
        o2[:, axis] = (lin[:, axis, 0] * oc[:, 0]
                       + lin[:, axis, 1] * oc[:, 1]
                       + lin[:, axis, 2] * oc[:, 2]) + off[:, axis]
        d2[:, axis] = (lin[:, axis, 0] * dc[:, 0]
                       + lin[:, axis, 1] * dc[:, 1]
                       + lin[:, axis, 2] * dc[:, 2])
    return o2, d2


def sphere_blas_hits(o2, d2, clip) -> np.ndarray:
    """Batched unit-box test of the sphere BLAS root record —
    the scalar instance path's one box test, vectorized (same
    exact-zero direction guard)."""
    safe = np.where(d2 == 0.0, 1e-12, d2)  # repro: lint-ok[float-eq] exact-zero guard mirrors the scalar engine's slab divide bit-for-bit
    t0 = (-1.0 - o2) / safe
    t1 = (1.0 - o2) / safe
    tn = np.minimum(t0, t1).max(axis=1)
    tf = np.maximum(t0, t1).min(axis=1)
    return (tn <= tf) & (tf >= 0.0) & (tn <= clip)


def shade_and_blend(
    shading,
    config,
    o: np.ndarray,
    d: np.ndarray,
    t_clip: np.ndarray,
    ray_c: np.ndarray,
    gid_c: np.ndarray,
    t_proxy: np.ndarray | None,
    o2: np.ndarray | None = None,
    d2: np.ndarray | None = None,
) -> PacketResult:
    """Canonical any-hit evaluation + front-to-back blend, batched.

    Mirrors :meth:`SceneShading.evaluate_hit` and the scalar blend
    loop expression-for-expression so the per-ray arithmetic (and
    therefore the early-termination decision) matches the scalar
    engine.  ``t_proxy`` holds proxy-geometry depths (the blend sort
    key for triangle proxies); ``None`` or NaN entries sort by the
    exact ellipsoid entry depth instead.  ``o2``/``d2`` are the
    candidates' object-space rays when the caller already computed
    them (the two-level instance path); otherwise they are derived
    here from the shading tables.

    Candidate *order* does not matter: the full ``(ray, t, gid)``
    lexsort below fully determines the blend sequence, which is what
    lets the depth-first and breadth-first engines share this stage
    bit-for-bit.
    """
    n = o.shape[0]
    result = empty_result(n, config.record_blended)
    if ray_c.size == 0:
        return result

    if o2 is None:
        o2, d2 = to_object_space(
            shading.w2o_linear[gid_c], shading.w2o_offset[gid_c],
            o[ray_c], d[ray_c])
    dd = d2[:, 0] * d2[:, 0] + d2[:, 1] * d2[:, 1] + d2[:, 2] * d2[:, 2]
    od = o2[:, 0] * d2[:, 0] + o2[:, 1] * d2[:, 1] + o2[:, 2] * d2[:, 2]
    oo = o2[:, 0] * o2[:, 0] + o2[:, 1] * o2[:, 1] + o2[:, 2] * o2[:, 2]
    valid = dd >= 1e-30
    dd_safe = np.where(valid, dd, 1.0)
    min_sq = oo - od * od / dd_safe
    valid &= min_sq <= 1.0
    t_entry = (-od / dd_safe) - np.sqrt(
        np.maximum((1.0 - min_sq) / dd_safe, 0.0))
    valid &= t_entry > 0.0
    alpha = shading.opacities[gid_c] * np.exp(
        (-0.5 * shading.kappa_sq) * min_sq)
    valid &= alpha >= ALPHA_MIN
    false_positives = int(ray_c.size - np.count_nonzero(valid))

    if t_proxy is None:
        t_hit = t_entry
    else:
        t_hit = np.where(np.isnan(t_proxy), t_entry, t_proxy)
    valid &= t_hit <= t_clip[ray_c]
    rays = ray_c[valid]
    if rays.size == 0:
        result.false_positives = false_positives
        return result
    gids = gid_c[valid]
    ts = t_hit[valid]
    alphas = np.minimum(alpha[valid], ALPHA_MAX)

    # Global per-ray (t, gid) order — the multiround blend sequence
    # (each round's k-buffer is exactly the k closest remaining
    # hits), and literally the singleround sort.
    order = np.lexsort((gids, ts, rays))
    rays, gids, alphas, ts = (
        rays[order], gids[order], alphas[order], ts[order])
    result.anyhit_calls = int(rays.size)
    result.false_positives = false_positives
    counts = np.bincount(rays, minlength=n)
    starts = np.zeros(n, dtype=np.int64)
    np.cumsum(counts[:-1], out=starts[1:])
    col = np.arange(rays.size, dtype=np.int64) - starts[rays]
    if config.mode == "multiround":
        # The scalar loop runs at most max_rounds rounds of k blends.
        cap = config.max_rounds * config.k
        within = col < cap
        rays, gids, alphas, ts, col = (
            rays[within], gids[within], alphas[within], ts[within],
            col[within])
        counts = np.minimum(counts, cap)
        if rays.size == 0:
            return result

    # Pair-slice boundaries per ray (pairs are sorted by ray, so
    # each contiguous ray range maps to one contiguous pair slice).
    pair_starts = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(counts, out=pair_starts[1:])

    colors = np.zeros((n, 3))
    transmittance = np.ones(n)
    blended = np.zeros(n, dtype=np.int64)
    records = result.blend_records  # per-ray lists when recording
    basis = sh_basis(d, shading._sh_degree)
    # The blend works on dense (rays, max hits) matrices; process
    # contiguous ray ranges whose matrix stays under the element
    # budget so a hit-heavy (especially uncapped singleround) scene
    # cannot balloon the allocation.
    r0 = 0
    while r0 < n:
        r1 = blend_range_end(counts, r0)
        p0, p1 = int(pair_starts[r0]), int(pair_starts[r1])
        if p0 == p1:
            r0 = r1
            continue
        rr = rays[p0:p1] - r0
        cc = col[p0:p1]
        aa = alphas[p0:p1]
        rows = r1 - r0
        width = int(counts[r0:r1].max())
        one_minus = np.ones((rows, width))
        one_minus[rr, cc] = 1.0 - aa
        # Row-wise cumprod = the scalar loop's sequential
        # `transmittance *= 1 - alpha`, bit for bit.
        t_cum = np.cumprod(one_minus, axis=1)
        prev_t = np.empty_like(t_cum)
        prev_t[:, 0] = 1.0
        prev_t[:, 1:] = t_cum[:, :-1]
        prev_pair = prev_t[rr, cc]
        # Entry i blends iff no earlier entry dropped transmittance
        # below the threshold; the running product is monotone
        # decreasing, so the blended prefix is a simple cutoff.
        blend = prev_pair >= config.transmittance_min
        rr_b = rr[blend]
        aa_b, prev_b = aa[blend], prev_pair[blend]
        if records is not None:
            # Pairs are sorted by (ray, t, gid): appends land in the
            # scalar tracer's exact blend order.
            slice_rays = rays[p0:p1][blend]
            slice_gids = gids[p0:p1][blend]
            slice_ts = ts[p0:p1][blend]
            for ray_i, gid_i, a_i, t_i in zip(
                    slice_rays.tolist(), slice_gids.tolist(),
                    aa_b.tolist(), slice_ts.tolist()):
                records[ray_i].append((gid_i, a_i, t_i))

        color = np.einsum("pc,pcd->pd", basis[rays[p0:p1][blend]],
                          shading.sh[gids[p0:p1][blend]]) + 0.5
        np.clip(color, 0.0, None, out=color)
        contrib = (prev_b * aa_b)[:, None] * color
        # np.add.at accumulates in pair order (sorted by ray, then
        # t): the same sequential color accumulation as the scalar
        # loop.
        np.add.at(colors[r0:r1], rr_b, contrib)

        n_blend = np.bincount(rr_b, minlength=rows)
        blended[r0:r1] = n_blend
        idx = np.nonzero(n_blend)[0]
        transmittance[r0 + idx] = t_cum[idx, n_blend[idx] - 1]
        r0 = r1

    result.colors = colors
    result.transmittance = transmittance
    result.blended = blended
    result.terminated = transmittance < config.transmittance_min
    if config.mode == "multiround":
        result.rounds = np.maximum(-(-blended // config.k), 1)
    else:
        result.rounds = np.ones(n, dtype=np.int64)
    return result


def blend_range_end(counts: np.ndarray, r0: int,
                    budget: int = 2_000_000) -> int:
    """End (exclusive) of the largest contiguous ray range starting
    at ``r0`` whose dense blend matrix — rows x the range's max hit
    count — stays within ``budget`` elements (16 MB of float64).
    Always includes at least one ray so progress is guaranteed."""
    n = counts.shape[0]
    width = 0
    r = r0
    while r < n:
        w = int(counts[r])
        if w > width:
            if r > r0 and (r - r0 + 1) * w > budget:
                break
            width = w
        elif width and (r - r0 + 1) * width > budget:
            break
        r += 1
    return r
