"""Wavefront (breadth-first) ray traversal over the flattened layout.

The packet engine (:mod:`repro.rt.packet`) already batches geometry
work, but its *schedule* is still a depth-first walk: one Python-level
stack iteration — several numpy calls on a tile-sized ray subset — per
visited node.  On frame-sized batches the interpreter dispatch per node
dominates again.  This module restructures traversal as a **wavefront**:

* the unit of work is a frontier of live ``(ray, node)`` pairs, all at
  the same tree depth, across the *whole frame's* ray set;
* each Python-level step gathers every pair's child boxes and runs
  **one** vectorized slab test over the entire frontier, so the number
  of interpreter iterations drops from O(nodes visited) to O(tree
  height);
* surviving internal pairs are compacted with ``np.nonzero`` and binned
  by node id with a stable ``np.argsort`` (gather coherence — pairs at
  the same node read the same child rows); leaf pairs are expanded to
  ``(ray, primitive)`` candidates with ``np.repeat`` offsets from the
  leaf-count prefix sums;
* leaf batches then flow through the exact shared kernels the packet
  engine uses (:mod:`repro.rt.kernels`): one masked Möller–Trumbore per
  candidate batch, the batched sphere-BLAS root test, and the canonical
  any-hit + front-to-back blend.

**Parity argument.**  The accept test per ``(ray, node)`` pair is the
same elementwise arithmetic as the packet engine's (and the scalar
slab), and neither engine prunes by a shrinking ``t_max`` — so
breadth-first and depth-first order visit the *identical* pair set and
produce the identical candidate multiset.  Every kernel after traversal
is elementwise per candidate, and the blend stage sorts by the fully
determining ``(ray, t, gid)`` key before any order-sensitive
accumulation.  Candidate *order* is the only thing the schedule
changes, and nothing downstream depends on it — hence bit-identical
images and exactly equal counters across all three engines.

Heterogeneous TLAS scenes (per-instance multi-BLAS tables, activated
with this engine) work day one: instance candidates are grouped by
their ``inst_blas`` slot and each shared BLAS is intersected once with
its group — the same (previously dormant) grouping the packet engine
carries.

Per-phase ``repro.obs`` histograms: ``rt.phase.bin`` (frontier
compaction: nonzero/argsort/expand) alongside the same
``rt.phase.traversal`` / ``rt.phase.intersect`` / ``rt.phase.blend``
the other engines report, so the phase breakdown compares directly.
"""

from __future__ import annotations

import time

import numpy as np

from repro.obs import get_registry, span

from repro.bvh.flatten import BLAS_SPHERE, PRIMS_GAUSSIANS, PRIMS_TRIANGLES
from repro.bvh.node import KIND_INTERNAL
from repro.rt.kernels import Level, PacketResult, entering_hits, sphere_blas_hits
from repro.rt.packet import (
    WAVEFRONT_MIN_RAYS,
    PacketTracer,
    fallback_reason,
    packet_supported,
)
from repro.rt.tracer import TraceConfig

__all__ = [
    "WAVEFRONT_MIN_RAYS",
    "WAVEFRONT_RAY_CHUNK",
    "WavefrontTracer",
    "wavefront_supported",
]

#: Rays per wavefront chunk.  Frontier temporaries scale with the live
#: pair count (bounded separately by :data:`_MAX_FRONTIER`), so the ray
#: chunk can be far larger than the packet engine's — a whole frame in
#: one chunk is the common case.  The serving layer tunes the effective
#: chunk per scene from measured frame costs (``TileCostModel``).
WAVEFRONT_RAY_CHUNK = 1 << 16

#: Maximum live pairs slab-tested in one vectorized step; bounds the
#: (pairs, width, 3) broadcast temporaries to tens of MB.  Splitting a
#: frontier changes nothing numerically (every op is elementwise).
_MAX_FRONTIER = 1 << 17

_INF = float("inf")


def wavefront_supported(structure, config) -> bool:
    """Whether the wavefront engine covers this (structure, config)
    pair — exactly the packet engine's predicate: both consume the one
    flattened layout and neither does GRTX-HW checkpointing."""
    return packet_supported(structure, config)


class WavefrontTracer(PacketTracer):
    """Traces whole-frame ray sets breadth-first through one flattened
    scene structure.

    Construction and the public API mirror
    :class:`~repro.rt.packet.PacketTracer` (``trace_packet`` /
    ``trace_packet_recorded``), so every consumer of the packet engine
    can hold either.  Only the traversal schedule differs; the leaf and
    blend kernels are shared, which is what keeps the engines
    bit-identical.  Like the scalar tracer, one instance serves one
    caller at a time (it carries small per-trace phase-timing scratch).
    """

    def __init__(
        self,
        structure,
        shading,
        config: TraceConfig | None = None,
        ray_chunk: int = WAVEFRONT_RAY_CHUNK,
    ) -> None:
        config = config or TraceConfig()
        if not wavefront_supported(structure, config):
            raise ValueError(
                "wavefront engine supports flattenable structures without "
                "checkpointing; use the scalar Tracer "
                f"({fallback_reason(structure, config)})")
        super().__init__(structure, shading, config)
        self.ray_chunk = int(ray_chunk)
        #: Seconds spent in frontier compaction during the current
        #: chunk (reset per chunk; reported as ``rt.phase.bin``).
        self._bin_s = 0.0
        #: Per-level axis-major box tables (built on first traversal of
        #: each level, keyed by the level's stable slot name): ``(3,
        #: n_nodes, width)`` C-contiguous, so the frontier's per-axis
        #: gather reads contiguous rows.
        self._axis_cache: dict[str, tuple[np.ndarray, np.ndarray]] = {}
        #: Lazy plain packet tracer backing ``trace_packet_recorded``
        #: (the recorder replays depth-first control flow).
        self._record_delegate: PacketTracer | None = None

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def trace_packet(
        self,
        origins: np.ndarray,
        directions: np.ndarray,
        t_clip: np.ndarray | None = None,
    ) -> PacketResult:
        """Trace a frame-sized bundle of rays to completion."""
        o = np.ascontiguousarray(origins, dtype=np.float64)
        d = np.ascontiguousarray(directions, dtype=np.float64)
        n = o.shape[0]
        if t_clip is None:
            t_clip = np.full(n, _INF)
        else:
            t_clip = np.asarray(t_clip, dtype=np.float64)
        if n == 0:
            return self._empty_result(0)
        chunk = max(int(self.ray_chunk), 1)
        with span("rt.wavefront.trace", rays=n):
            if n <= chunk:
                return self._trace_chunk(o, d, t_clip)
            parts = [
                self._trace_chunk(o[i:i + chunk], d[i:i + chunk],
                                  t_clip[i:i + chunk])
                for i in range(0, n, chunk)
            ]
            return PacketResult.concatenate(parts, self.config.record_blended)

    def trace_packet_recorded(
        self,
        origins: np.ndarray,
        directions: np.ndarray,
        t_clip: np.ndarray | None = None,
        label: str = "primary",
    ):
        """Trace a bundle *and* record per-ray fetch traces.

        The trace recorder reconstructs per-ray *depth-first* control
        flow (that is what the scalar RT unit executes and the timing
        model replays), so recording runs on an internal packet tracer
        over the same flattened tables — identical results, identical
        traces; the wavefront schedule only accelerates the unrecorded
        path.
        """
        if self._record_delegate is None:
            self._record_delegate = PacketTracer(
                self.flat, self.shading, self.config)
        return self._record_delegate.trace_packet_recorded(
            origins, directions, t_clip, label)

    # ------------------------------------------------------------------
    # Pipeline
    # ------------------------------------------------------------------

    def _trace_chunk(self, o, d, t_clip) -> PacketResult:
        # Same degenerate-direction guard as the other engines, so slab
        # tests agree bit-for-bit.
        safe = np.where(np.abs(d) < 1e-12, 1e-12, d)
        inv_d = 1.0 / safe

        registry = get_registry()
        self._bin_s = 0.0
        t_start = time.perf_counter()
        l_rays, l_refs = self._traverse_wave(self._root, o, inv_d, t_clip,
                                             "root")
        bin_traversal = self._bin_s
        t_traversal = time.perf_counter()
        o2 = d2 = None
        if self._prims == PRIMS_TRIANGLES:
            ray_c, gid_c, t_proxy = self._wave_triangles(o, d, l_rays, l_refs)
        elif self._prims == PRIMS_GAUSSIANS:
            ray_c, gid_c = self._wave_customs(l_rays, l_refs)
            t_proxy = None
        else:
            ray_c, gid_c, t_proxy, o2, d2 = self._wave_instances(
                o, d, t_clip, l_rays, l_refs)
        bin_intersect = self._bin_s - bin_traversal
        t_intersect = time.perf_counter()
        result = self._shade_and_blend(o, d, t_clip, ray_c, gid_c, t_proxy,
                                       o2=o2, d2=d2)
        t_blend = time.perf_counter()
        registry.observe("rt.phase.bin", self._bin_s)
        registry.observe("rt.phase.traversal",
                         (t_traversal - t_start) - bin_traversal)
        registry.observe("rt.phase.intersect",
                         (t_intersect - t_traversal) - bin_intersect)
        registry.observe("rt.phase.blend", t_blend - t_intersect)
        return result

    def _axis_boxes(self, level: Level, key: str) -> np.ndarray:
        """Axis-major ``(6, n_nodes, width)`` copy of a level's boxes.

        ``Level`` stores slot-major ``(n_nodes, width, 3)`` tables shared
        with the packet engine; the wavefront slab test gathers one axis
        plane at a time, so plane ``2a``/``2a+1`` holds axis ``a``'s
        lo/hi as its own contiguous ``(n_nodes, width)`` table (gathers
        from a contiguous plane produce contiguous outputs the in-place
        ufuncs run fastest on).  Cached under the level's slot name
        ("root" or "blas<i>") — the tracer owns its levels and they are
        immutable after flattening, so the names are stable for the
        tracer's lifetime.
        """
        cached = self._axis_cache.get(key)
        if cached is None:
            n, width, _ = level.child_lo.shape
            cached = np.empty((6, n, width))
            for a in range(3):
                cached[2 * a] = level.child_lo[:, :, a]
                cached[2 * a + 1] = level.child_hi[:, :, a]
            self._axis_cache[key] = cached
        return cached

    def _traverse_wave(
        self,
        level: Level,
        o: np.ndarray,
        inv_d: np.ndarray,
        t_clip: np.ndarray,
        cache_key: str,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Breadth-first traversal of one flattened level.

        One frontier of ``(ray, node)`` pairs per depth; each iteration
        runs one gathered slab test over the whole frontier (sliced at
        :data:`_MAX_FRONTIER` pairs to bound temporaries) and compacts
        survivors.  Returns the accepted ``(ray, leaf record)`` pairs as
        flat parallel arrays.  The accept test matches the packet
        engine's :meth:`~repro.rt.packet.PacketTracer._traverse`
        elementwise, and there is no ``t_max`` pruning — so both visit
        the identical pair set (see the module docstring).
        """
        kinds = level.child_kind
        refs = level.child_ref
        packed = self._axis_boxes(level, cache_key)
        # Axis-major ray tables: contiguous per-axis rows, gathered once
        # per frontier slice.
        oT = np.ascontiguousarray(o.T)
        iT = np.ascontiguousarray(inv_d.T)
        n = o.shape[0]
        empty = np.empty(0, dtype=np.int64)
        f_rays = np.arange(n, dtype=np.int64)
        f_nodes = np.zeros(n, dtype=np.int64)
        leaf_ray_parts: list[np.ndarray] = []
        leaf_ref_parts: list[np.ndarray] = []
        while f_rays.size:
            next_ray_parts: list[np.ndarray] = []
            next_node_parts: list[np.ndarray] = []
            for s0 in range(0, f_rays.size, _MAX_FRONTIER):
                fr = f_rays[s0:s0 + _MAX_FRONTIER]
                fn = f_nodes[s0:s0 + _MAX_FRONTIER]
                # Axis-split slab test: per-axis contiguous
                # (pairs, width) gathers updated in place — 3x smaller
                # temporaries than the (pairs, width, 3) broadcast, and
                # every ufunc runs on contiguous memory.  Elementwise
                # the arithmetic is the packet engine's exactly
                # ((lo-o)*inv per axis, min/max per axis, then an
                # associative max/min across axes), so accept decisions
                # are bit-equal.
                tn = tf = None
                for a in range(3):
                    roa = oT[a][fr][:, None]
                    ria = iT[a][fr][:, None]
                    t0 = packed[2 * a][fn]
                    t0 -= roa
                    t0 *= ria
                    t1 = packed[2 * a + 1][fn]
                    t1 -= roa
                    t1 *= ria
                    near = np.minimum(t0, t1)
                    far = np.maximum(t0, t1, out=t1)
                    if tn is None:
                        tn, tf = near, far
                    else:
                        np.maximum(tn, near, out=tn)
                        np.minimum(tf, far, out=tf)
                k = kinds[fn]
                # Same accept test as the packet/scalar slab (t_min = 0,
                # no shrinking t_max); empty slots masked by kind.
                hit = tn <= tf
                hit &= tf >= 0.0
                hit &= tn <= t_clip[fr, None]
                hit &= k != 0
                b0 = time.perf_counter()
                pair, slot = np.nonzero(hit)
                child_kind = k[pair, slot]
                child_ref = refs[fn[pair], slot]
                internal = child_kind == KIND_INTERNAL
                next_ray_parts.append(fr[pair[internal]])
                next_node_parts.append(child_ref[internal])
                leaf = ~internal
                leaf_ray_parts.append(fr[pair[leaf]])
                leaf_ref_parts.append(child_ref[leaf])
                self._bin_s += time.perf_counter() - b0
            b0 = time.perf_counter()
            f_rays = (np.concatenate(next_ray_parts)
                      if next_ray_parts else empty)
            f_nodes = (np.concatenate(next_node_parts)
                       if next_node_parts else empty)
            if f_nodes.size:
                # Bin the next frontier by node id (stable, so rays stay
                # ordered within a bin): pairs at the same node gather
                # the same child rows — cache-coherent gathers, and the
                # deterministic order the parity contract wants.
                order = np.argsort(f_nodes, kind="stable")
                f_rays = f_rays[order]
                f_nodes = f_nodes[order]
            self._bin_s += time.perf_counter() - b0
        if not leaf_ray_parts:
            return empty, empty
        b0 = time.perf_counter()
        l_rays = np.concatenate(leaf_ray_parts)
        l_refs = np.concatenate(leaf_ref_parts)
        self._bin_s += time.perf_counter() - b0
        return l_rays, l_refs

    @staticmethod
    def _expand_pairs(
        level: Level, l_rays: np.ndarray, l_refs: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Expand accepted ``(ray, leaf)`` pairs into ``(ray,
        ordered-primitive)`` candidate pairs in one shot.

        ``np.repeat`` by per-leaf counts plus an offset ramp derived
        from the counts' prefix sum — the vectorized equivalent of the
        packet engine's per-leaf-visit repeat/tile, producing the same
        candidate multiset.
        """
        empty = np.empty(0, dtype=np.int64)
        if l_rays.size == 0:
            return empty, empty
        counts = level.leaf_count[l_refs].astype(np.int64)
        starts = level.leaf_start[l_refs].astype(np.int64)
        total = int(counts.sum())
        if total == 0:
            return empty, empty
        rp = np.repeat(l_rays, counts)
        ends = np.cumsum(counts)
        offsets = (np.arange(total, dtype=np.int64)
                   - np.repeat(ends - counts, counts))
        pp = np.repeat(starts, counts) + offsets
        return rp, pp

    # -- leaf stages (pair-array twins of the packet leaf methods) -----

    def _wave_triangles(
        self,
        o: np.ndarray,
        d: np.ndarray,
        l_rays: np.ndarray,
        l_refs: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Monolithic triangle leaves: one masked Möller–Trumbore over
        every candidate pair, reduced to the nearest entering triangle
        per (ray, gaussian) — the packet engine's reduction on the
        breadth-first candidate order (the full-key sort makes the
        selected values order-independent)."""
        b0 = time.perf_counter()
        rp, tp = self._expand_pairs(self._root, l_rays, l_refs)
        self._bin_s += time.perf_counter() - b0
        if rp.size == 0:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty, np.empty(0)

        sel, t = entering_hits(o[rp], d[rp], tp, self._v0, self._e1, self._e2)
        rp = rp[sel]
        gid = self._owner[tp[sel]]
        if rp.size == 0:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty, np.empty(0)
        # Nearest entering triangle per (ray, gaussian).
        order = np.lexsort((t, gid, rp))
        rp, gid, t = rp[order], gid[order], t[order]
        first = np.ones(rp.size, dtype=bool)
        first[1:] = (rp[1:] != rp[:-1]) | (gid[1:] != gid[:-1])
        return rp[first], gid[first], t[first]

    def _wave_customs(
        self, l_rays: np.ndarray, l_refs: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Custom-primitive leaves: candidates are the (ray, gaussian)
        pairs directly."""
        b0 = time.perf_counter()
        rp, pp = self._expand_pairs(self._root, l_rays, l_refs)
        self._bin_s += time.perf_counter() - b0
        if rp.size == 0:
            return rp, pp
        return rp, self._gids[pp]

    def _wave_instances(
        self,
        o: np.ndarray,
        d: np.ndarray,
        t_clip: np.ndarray,
        l_rays: np.ndarray,
        l_refs: np.ndarray,
    ) -> tuple:
        """TLAS leaves: transform the candidate bundle through its
        instances and intersect each shared BLAS once with its slot
        group — including the heterogeneous multi-BLAS case, where
        ``inst_blas`` partitions the bundle per template."""
        empty = np.empty(0, dtype=np.int64)
        b0 = time.perf_counter()
        rp, pp = self._expand_pairs(self._root, l_rays, l_refs)
        self._bin_s += time.perf_counter() - b0
        if rp.size == 0:
            return empty, empty, None, None, None
        gid = self._gids[pp]
        o2, d2 = self._to_object_space(
            self._inst_lin[pp], self._inst_off[pp], o[rp], d[rp])

        sub_parts: list[np.ndarray] = []
        t_parts: list[np.ndarray] = []
        mesh_hit = False
        for slot, blas in enumerate(self._blas):
            if len(self._blas) > 1:
                b0 = time.perf_counter()
                group = np.nonzero(self._inst_blas[pp] == slot)[0]
                self._bin_s += time.perf_counter() - b0
                if group.size == 0:
                    continue
                o_s, d_s = o2[group], d2[group]
                clip_s = t_clip[rp[group]]
            else:
                group = None
                o_s, d_s = o2, d2
                clip_s = t_clip[rp]
            if blas.kind == BLAS_SPHERE:
                keep = sphere_blas_hits(o_s, d_s, clip_s)
                sub = np.nonzero(keep)[0] if group is None else group[keep]
                sub_parts.append(sub)
                t_parts.append(np.full(sub.size, np.nan))
            else:
                sel, t = self._wave_mesh_blas(slot, blas, o_s, d_s, clip_s)
                sub_parts.append(sel if group is None else group[sel])
                t_parts.append(t)
                mesh_hit = True
        if not sub_parts:
            return empty, empty, None, None, None
        sub = np.concatenate(sub_parts)
        t_proxy = np.concatenate(t_parts) if mesh_hit else None
        return rp[sub], gid[sub], t_proxy, o2[sub], d2[sub]

    def _wave_mesh_blas(
        self, slot: int, blas, o2, d2, clip
    ) -> tuple[np.ndarray, np.ndarray]:
        """Traverse one shared mesh BLAS breadth-first with a whole
        instance group, then reduce to the nearest entering template
        triangle per pair — the packet engine's
        :meth:`~repro.rt.packet.PacketTracer._mesh_blas_hits` on the
        wavefront schedule."""
        safe = np.where(np.abs(d2) < 1e-12, 1e-12, d2)
        inv_d2 = 1.0 / safe
        root_lo, root_hi = self._blas_roots[slot]
        t0 = (root_lo[None, :] - o2) * inv_d2
        t1 = (root_hi[None, :] - o2) * inv_d2
        tn = np.minimum(t0, t1).max(axis=1)
        tf = np.maximum(t0, t1).min(axis=1)
        live = np.nonzero((tn <= tf) & (tf >= 0.0) & (tn <= clip))[0]
        if live.size == 0:
            return np.empty(0, dtype=np.int64), np.empty(0)

        level = self._blas_levels[slot]
        o_l, d_l = o2[live], d2[live]
        l_rays, l_refs = self._traverse_wave(level, o_l, inv_d2[live],
                                             clip[live], f"blas{slot}")
        b0 = time.perf_counter()
        pr, tp = self._expand_pairs(level, l_rays, l_refs)
        self._bin_s += time.perf_counter() - b0
        if pr.size == 0:
            return np.empty(0, dtype=np.int64), np.empty(0)
        mesh = blas.mesh
        sel, t = entering_hits(o_l[pr], d_l[pr], tp, mesh.v0, mesh.e1, mesh.e2)
        pr = pr[sel]
        if pr.size == 0:
            return np.empty(0, dtype=np.int64), np.empty(0)
        # Nearest entering template triangle per instance pair.
        order = np.lexsort((t, pr))
        pr, t = pr[order], t[order]
        first = np.ones(pr.size, dtype=bool)
        first[1:] = pr[1:] != pr[:-1]
        return live[pr[first]], t[first]
