"""Ray-intersection predictor analysis (Liu et al., MICRO 2021).

The paper argues the ray predictor — which hashes a ray to the primitive
it hit last time and skips upper-level traversal when the prediction
verifies — is *not applicable* to Gaussian ray tracing: "3D Gaussian ray
tracing requires finding **all** intersecting Gaussians along the ray,
making the ray predictor not directly applicable" (Section VII).

This module turns that qualitative claim into numbers. We implement the
predictor's core mechanism (a direction-quantized hash table trained on
one frame and queried on the next) and measure, per ray:

* **prediction hit rate** — how often the predicted Gaussian is among the
  next frame's blended set (the metric the MICRO paper optimizes);
* **coverage** — the fraction of *all* Gaussians that must be blended
  which a verified single prediction supplies.

For ambient occlusion (one hit suffices) a verified prediction ends the
query; for volume rendering, coverage caps the achievable benefit: a ray
that blends 20 Gaussians gains almost nothing from predicting one of
them, because the full traversal still has to run for the other 19.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:  # avoid the render <-> rt import cycle at runtime
    from repro.render.camera import PinholeCamera
    from repro.render.renderer import GaussianRayTracer


@dataclass(frozen=True)
class PredictorReport:
    """Outcome of the predictor analysis across a frame pair."""

    n_rays: int
    #: Rays whose predicted Gaussian appears in their blended set.
    prediction_hits: int
    #: Mean fraction of each ray's blended set covered by the prediction.
    mean_coverage: float
    #: Mean number of Gaussians blended per ray (the "all hits" burden).
    mean_blended: float

    @property
    def hit_rate(self) -> float:
        return self.prediction_hits / self.n_rays if self.n_rays else 0.0

    @property
    def traversal_savable_fraction(self) -> float:
        """Upper bound on traversal work a verified prediction can remove.

        Even a perfect prediction replaces at most one of the
        ``mean_blended`` required intersections per ray; the remaining
        ones still need the full interval traversal.
        """
        return self.mean_coverage * self.hit_rate


class RayPredictor:
    """Direction-quantized last-hit prediction table.

    Keys quantize the ray's direction octant + angular cell and its
    origin cell, mirroring the MICRO paper's go/no-go hash. The table
    stores the first blended Gaussian (the predictor's natural target:
    the closest significant hit).
    """

    def __init__(self, angular_bins: int = 64, origin_bins: int = 16) -> None:
        if angular_bins < 1 or origin_bins < 1:
            raise ValueError("bin counts must be positive")
        self.angular_bins = angular_bins
        self.origin_bins = origin_bins
        self._table: dict[tuple[int, ...], int] = {}

    def _key(self, origin: np.ndarray, direction: np.ndarray,
             lo: np.ndarray, extent: np.ndarray) -> tuple[int, ...]:
        d = direction / max(float(np.abs(direction).max()), 1e-12)
        a = int((d[0] + 1.0) * 0.5 * (self.angular_bins - 1))
        b = int((d[1] + 1.0) * 0.5 * (self.angular_bins - 1))
        c = int((d[2] + 1.0) * 0.5 * (self.angular_bins - 1))
        cell = np.clip(((origin - lo) / extent * self.origin_bins).astype(int),
                       0, self.origin_bins - 1)
        return (a, b, c, int(cell[0]), int(cell[1]), int(cell[2]))

    def train(self, origins: np.ndarray, directions: np.ndarray,
              first_hits: list[int | None], lo: np.ndarray, extent: np.ndarray) -> None:
        """Insert one frame's first blended Gaussian per ray."""
        for i, hit in enumerate(first_hits):
            if hit is None:
                continue
            self._table[self._key(origins[i], directions[i], lo, extent)] = hit

    def predict(self, origin: np.ndarray, direction: np.ndarray,
                lo: np.ndarray, extent: np.ndarray) -> int | None:
        return self._table.get(self._key(origin, direction, lo, extent))

    @property
    def entries(self) -> int:
        return len(self._table)


def _blended_sets(renderer: GaussianRayTracer, camera: PinholeCamera
                  ) -> tuple[np.ndarray, np.ndarray, list[list[int]]]:
    """Render with blend recording and collect per-ray blended Gaussians."""
    from dataclasses import replace as dc_replace

    from repro.render.renderer import GaussianRayTracer

    config = dc_replace(renderer.config, record_blended=True)
    tracer_cfg_renderer = GaussianRayTracer(renderer.cloud, renderer.structure, config)
    bundle = camera.generate_rays()
    blended: list[list[int]] = []
    for i in range(len(bundle)):
        outcome = tracer_cfg_renderer.tracer.trace_ray(
            bundle.origins[i], bundle.directions[i]
        )
        blended.append([gid for gid, _a, _t in (outcome.blend_records or [])])
    return bundle.origins, bundle.directions, blended


def analyze_predictor(
    renderer: GaussianRayTracer,
    train_camera: PinholeCamera,
    query_camera: PinholeCamera,
    predictor: RayPredictor | None = None,
) -> PredictorReport:
    """Train on one frame, query on the next, report coverage.

    ``train_camera`` and ``query_camera`` should be nearby viewpoints
    (successive frames of a camera path), the predictor's intended
    deployment.
    """
    predictor = predictor or RayPredictor()
    lo = renderer.cloud.means.min(axis=0)
    hi = renderer.cloud.means.max(axis=0)
    extent = np.where(hi - lo > 0.0, hi - lo, 1.0)

    t_origins, t_dirs, t_blended = _blended_sets(renderer, train_camera)
    first_hits = [b[0] if b else None for b in t_blended]
    predictor.train(t_origins, t_dirs, first_hits, lo, extent)

    q_origins, q_dirs, q_blended = _blended_sets(renderer, query_camera)
    hits = 0
    coverage_sum = 0.0
    blended_sum = 0
    n = len(q_blended)
    for i in range(n):
        need = q_blended[i]
        blended_sum += len(need)
        predicted = predictor.predict(q_origins[i], q_dirs[i], lo, extent)
        if predicted is not None and need and predicted in need:
            hits += 1
            coverage_sum += 1.0 / len(need)
    return PredictorReport(
        n_rays=n,
        prediction_hits=hits,
        mean_coverage=coverage_sum / n if n else 0.0,
        mean_blended=blended_sum / n if n else 0.0,
    )
