"""Programmable ray-tracing pipeline (Figure 2 of the paper).

The Gaussian renderer in :mod:`repro.rt.tracer` hard-codes the k-buffer
any-hit program of Listing 1 because that is what GRTX optimizes. This
module exposes the *general* Vulkan/OptiX-style pipeline the paper's
Figure 2 describes — ray generation, any-hit, closest-hit and miss
shaders as user callbacks over the same acceleration structures — so the
library can also express classic ray-tracing programs (depth maps,
transparent shadows, visibility queries) against Gaussian scenes.

Semantics follow the standard APIs:

* the *any-hit shader* runs for every candidate intersection in
  traversal order and returns :data:`ACCEPT` (commit, keep going),
  :data:`IGNORE` (``ignoreIntersectionEXT`` — do not commit, keep
  going), or :data:`TERMINATE` (``terminateRayEXT`` — commit and stop);
* after traversal the *closest-hit shader* runs on the nearest committed
  hit, or the *miss shader* if nothing was committed;
* ``trace_ray`` may be re-invoked from closest-hit shaders for secondary
  rays (recursion is bounded by ``max_depth``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

import numpy as np

from repro.bvh.monolithic import MonolithicBVH
from repro.bvh.node import KIND_EMPTY, KIND_INTERNAL, KIND_LEAF
from repro.bvh.two_level import TwoLevelBVH
from repro.geometry.intersect import ray_triangles
from repro.render.camera import PinholeCamera
from repro.render.image import ImageBuffer
from repro.rt.shading import SceneShading

ACCEPT = 0
IGNORE = 1
TERMINATE = 2

_INF = float("inf")


@dataclass(frozen=True)
class Hit:
    """One candidate intersection handed to the any-hit shader."""

    t: float
    gaussian_id: int
    alpha: float

    def position(self, origin: np.ndarray, direction: np.ndarray) -> np.ndarray:
        return origin + self.t * direction


AnyHitShader = Callable[[Hit, Any], int]
ClosestHitShader = Callable[[Hit, Any, "TraceContext"], None]
MissShader = Callable[[Any], None]


@dataclass
class TraceContext:
    """Handle passed to closest-hit shaders for casting secondary rays."""

    pipeline: "RayTracingPipeline"
    depth: int

    def trace(self, origin: np.ndarray, direction: np.ndarray, payload: Any,
              t_min: float = 1e-6, t_max: float = _INF) -> Any:
        return self.pipeline.trace_ray(origin, direction, payload,
                                       t_min=t_min, t_max=t_max,
                                       depth=self.depth + 1)


class RayTracingPipeline:
    """Shader-programmable tracing over a Gaussian acceleration structure.

    Candidate hits are the canonical Gaussian intersections (exact
    kappa-sigma ellipsoid entry + alpha at maximum response), identical to
    what the optimized k-buffer tracer sees, so pipeline programs compose
    with every structure type.
    """

    def __init__(
        self,
        structure: MonolithicBVH | TwoLevelBVH,
        shading: SceneShading,
        any_hit: AnyHitShader | None = None,
        closest_hit: ClosestHitShader | None = None,
        miss: MissShader | None = None,
        max_depth: int = 4,
    ) -> None:
        self.structure = structure
        self.shading = shading
        self.any_hit = any_hit
        self.closest_hit = closest_hit
        self.miss = miss
        self.max_depth = max_depth
        self.two_level = isinstance(structure, TwoLevelBVH)
        self._bvh = structure.tlas if self.two_level else structure.bvh

    # ------------------------------------------------------------------

    def trace_ray(
        self,
        origin: np.ndarray,
        direction: np.ndarray,
        payload: Any,
        t_min: float = 0.0,
        t_max: float = _INF,
        depth: int = 0,
    ) -> Any:
        """One traceRayEXT invocation; returns the (mutated) payload."""
        if depth > self.max_depth:
            if self.miss is not None:
                self.miss(payload)
            return payload
        origin = np.asarray(origin, dtype=np.float64)
        direction = np.asarray(direction, dtype=np.float64)

        committed: Hit | None = None
        for hit in self._candidates(origin, direction, t_min, t_max):
            status = ACCEPT if self.any_hit is None else self.any_hit(hit, payload)
            if status == IGNORE:
                continue
            if committed is None or hit.t < committed.t:
                committed = hit
            if status == TERMINATE:
                break

        if committed is not None and self.closest_hit is not None:
            self.closest_hit(committed, payload, TraceContext(self, depth))
        elif committed is None and self.miss is not None:
            self.miss(payload)
        return payload

    def render(self, camera: PinholeCamera, make_payload: Callable[[], Any],
               payload_color: Callable[[Any], np.ndarray]) -> np.ndarray:
        """Ray-generation loop: one payload per pixel, row-major image."""
        bundle = camera.generate_rays()
        frame = ImageBuffer(camera.width, camera.height)
        for i in range(len(bundle)):
            payload = make_payload()
            self.trace_ray(bundle.origins[i], bundle.directions[i], payload)
            frame.set_pixel(int(bundle.pixel_ids[i]), payload_color(payload))
        return frame.array

    # ------------------------------------------------------------------

    def _candidates(self, origin, direction, t_min, t_max):
        """Yield canonical Gaussian hits in traversal (near-first) order.

        A lightweight traversal without trace recording — pipeline
        programs are about expressiveness, not the timing model.
        """
        shading = self.shading
        safe = np.where(np.abs(direction) < 1e-12, 1e-12, direction)
        inv_d = 1.0 / safe
        bvh = self._bvh
        stack: list[tuple[int, int]] = [(KIND_INTERNAL, 0)]
        while stack:
            kind, ref = stack.pop()
            if kind == KIND_LEAF:
                for gid in self._leaf_gaussians(ref, origin, direction):
                    result = shading.evaluate_hit(int(gid), origin, direction)
                    if result is None:
                        continue
                    t_hit, alpha = result
                    if t_min < t_hit <= t_max:
                        yield Hit(t=t_hit, gaussian_id=int(gid), alpha=alpha)
                continue
            t0 = (bvh.child_lo[ref] - origin) * inv_d
            t1 = (bvh.child_hi[ref] - origin) * inv_d
            t_near = np.minimum(t0, t1).max(axis=1)
            t_far = np.maximum(t0, t1).min(axis=1)
            kinds = bvh.child_kind[ref]
            hit = (kinds != KIND_EMPTY) & (t_near <= t_far) & (t_far >= t_min) \
                & (t_far >= 0.0) & (t_near <= t_max)
            slots = np.nonzero(hit)[0]
            order = slots[np.argsort(-t_near[slots], kind="stable")]
            for slot in order:
                stack.append((int(kinds[slot]), int(bvh.child_ref[ref, slot])))

    def _leaf_gaussians(self, leaf_ref, origin, direction):
        """Candidate Gaussian ids whose proxy geometry the ray hits."""
        structure = self.structure
        bvh = self._bvh
        prims = bvh.leaf_prims(leaf_ref)
        if self.two_level or not structure.is_triangle_proxy:
            # Instances / custom primitives: the exact test in
            # evaluate_hit is the intersection shader; every referenced
            # Gaussian is a candidate.
            return [int(g) for g in prims]
        ts = ray_triangles(
            origin, direction,
            structure.tri_v0[prims], structure.tri_v1[prims], structure.tri_v2[prims],
            entering_only=True,
        )
        hit = np.isfinite(ts) & (ts > 0.0)
        owners = structure.tri_gaussian[prims[hit]]
        seen: set[int] = set()
        out: list[int] = []
        for gid in owners:
            gid = int(gid)
            if gid not in seen:
                seen.add(gid)
                out.append(gid)
        return out


# ---------------------------------------------------------------------------
# Ready-made pipeline programs
# ---------------------------------------------------------------------------


@dataclass
class DepthPayload:
    """Payload for expected-depth rendering."""

    depth: float = 0.0
    hit: bool = False


def depth_pipeline(structure, shading: SceneShading,
                   alpha_threshold: float = 0.3) -> RayTracingPipeline:
    """Closest *solid* surface depth: the first Gaussian whose alpha
    exceeds ``alpha_threshold`` commits; translucent ones are ignored.

    A standard building block for Gaussian-scene depth extraction (the
    "extracting physical properties" use-case the paper cites for 3DGRT).
    """

    def any_hit(hit: Hit, payload: DepthPayload) -> int:
        if hit.alpha < alpha_threshold:
            return IGNORE
        return ACCEPT

    def closest_hit(hit: Hit, payload: DepthPayload, ctx: TraceContext) -> None:
        payload.depth = hit.t
        payload.hit = True

    def miss(payload: DepthPayload) -> None:
        payload.hit = False

    return RayTracingPipeline(structure, shading, any_hit=any_hit,
                              closest_hit=closest_hit, miss=miss)


@dataclass
class ShadowPayload:
    """Payload accumulating transmittance toward a light."""

    transmittance: float = 1.0


def shadow_pipeline(structure, shading: SceneShading,
                    cutoff: float = 0.01) -> RayTracingPipeline:
    """Transparent shadow rays: every Gaussian along the segment
    attenuates the carried transmittance; traversal terminates once the
    ray is effectively opaque."""

    def any_hit(hit: Hit, payload: ShadowPayload) -> int:
        payload.transmittance *= 1.0 - hit.alpha
        if payload.transmittance < cutoff:
            return TERMINATE
        return IGNORE

    return RayTracingPipeline(structure, shading, any_hit=any_hit)
