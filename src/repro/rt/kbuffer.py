"""The k-buffer and eviction buffer of Listing 1.

The k-buffer keeps the k closest accepted Gaussians in depth order via
insertion sort (exactly the any-hit shader of the paper). The eviction
buffer is the GRTX-HW addition: Gaussians rejected from a full k-buffer
are parked there and get "a second opportunity" at the start of the next
round instead of being re-discovered by a root-restarted traversal.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass

#: Serialized entry sizes from Section IV-B of the paper.
CHECKPOINT_ENTRY_BYTES = 20  # 8 B node addr + 8 B TLAS leaf addr + 4 B t
EVICTION_ENTRY_BYTES = 8  # 4 B primitive id + 4 B t


@dataclass(frozen=True)
class KBufferEntry:
    """One accepted hit: depth, Gaussian id, and its precomputed alpha."""

    t: float
    gaussian_id: int
    alpha: float


class KBuffer:
    """Depth-sorted buffer of the k closest Gaussians for one ray.

    ``insert`` implements the any-hit shader's insertion-sort semantics:

    * buffer not full -> insert, return ``None`` (ignoreIntersection);
    * buffer full, new hit closer than the farthest -> insert, evict and
      return the old farthest (ignoreIntersection);
    * buffer full, new hit farthest -> return the new entry itself
      (the shader *reports* the hit, shrinking ``t_max``).
    """

    __slots__ = ("k", "_entries", "_members", "insertions")

    def __init__(self, k: int) -> None:
        if k < 1:
            raise ValueError("k must be >= 1")
        self.k = k
        self._entries: list[KBufferEntry] = []
        self._keys: list[float]
        self._members: set[int] = set()
        self.insertions = 0

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def full(self) -> bool:
        return len(self._entries) >= self.k

    def __contains__(self, gaussian_id: int) -> bool:
        return gaussian_id in self._members

    @property
    def farthest_t(self) -> float:
        """Depth of the current farthest entry (inf when empty)."""
        return self._entries[-1].t if self._entries else float("inf")

    def insert(self, entry: KBufferEntry) -> KBufferEntry | None:
        """Insert an accepted hit; return the rejected entry, if any.

        The returned entry is either the evicted old farthest (new hit was
        closer) or ``entry`` itself (new hit was beyond all k). ``None``
        means the buffer absorbed the hit without rejecting anything.
        """
        self.insertions += 1
        if self.full and entry.t >= self._entries[-1].t:
            return entry
        keys = [e.t for e in self._entries]
        pos = bisect.bisect_right(keys, entry.t)
        self._entries.insert(pos, entry)
        self._members.add(entry.gaussian_id)
        if len(self._entries) > self.k:
            evicted = self._entries.pop()
            self._members.discard(evicted.gaussian_id)
            return evicted
        return None

    def drain(self) -> list[KBufferEntry]:
        """Remove and return all entries in depth order (round blending)."""
        entries = self._entries
        self._entries = []
        self._members = set()
        return entries

    def peek(self) -> list[KBufferEntry]:
        """Entries in depth order without draining."""
        return list(self._entries)


class EvictionBuffer:
    """Per-ray eviction buffer (GRTX-HW, global-memory resident).

    Tracks its high-water mark so Figure 20's memory-usage numbers can be
    reproduced: the hardware sizes the allocation by the maximum number of
    entries any concurrent ray holds.
    """

    __slots__ = ("_entries", "high_water")

    def __init__(self) -> None:
        self._entries: list[KBufferEntry] = []
        self.high_water = 0

    def __len__(self) -> int:
        return len(self._entries)

    def push(self, entry: KBufferEntry) -> None:
        self._entries.append(entry)
        if len(self._entries) > self.high_water:
            self.high_water = len(self._entries)

    def drain_sorted(
        self, t_min: float, blended_at_t_min: frozenset[int] = frozenset()
    ) -> list[KBufferEntry]:
        """Remove all entries, deduplicated by Gaussian id, depth order.

        Entries strictly before ``t_min`` belong to already-blended
        Gaussians and are dropped (the baseline equally skips them via
        the ``t >= t_min`` traversal interval). Entries exactly at
        ``t_min`` are kept unless their Gaussian is in
        ``blended_at_t_min`` — an evicted hit that ties the round
        boundary must get its second opportunity, not be dropped.
        """
        best: dict[int, KBufferEntry] = {}
        for entry in self._entries:
            if entry.t < t_min or (
                entry.t == t_min and entry.gaussian_id in blended_at_t_min
            ):
                continue
            prev = best.get(entry.gaussian_id)
            if prev is None or entry.t < prev.t:
                best[entry.gaussian_id] = entry
        self._entries = []
        return sorted(best.values(), key=lambda e: (e.t, e.gaussian_id))
