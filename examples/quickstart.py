#!/usr/bin/env python3
"""Quickstart: render a Gaussian scene with GRTX and inspect the speedup.

Builds one synthetic workload, renders it with the 3DGRT-style baseline
(monolithic 20-triangle proxy BVH) and with full GRTX (shared-BLAS
two-level structure + checkpointed traversal), replays both through the
GPU timing model, verifies that the images agree, and writes them as PPM
files next to this script.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from pathlib import Path

from repro import (
    GaussianRayTracer,
    GpuConfig,
    TraceConfig,
    build_monolithic,
    build_two_level,
    default_camera_for,
    make_workload,
    psnr,
    replay,
    write_ppm,
)

OUT_DIR = Path(__file__).parent


def main() -> None:
    # A scaled-down "bonsai" (dense clusters of small Gaussians — the
    # scene the paper highlights as traversal-heavy).
    cloud = make_workload("bonsai", scale=1 / 800)
    camera = default_camera_for(cloud, width=24, height=24)
    gpu = GpuConfig.rtx_like()
    print(f"scene: {cloud.name}, {len(cloud)} Gaussians")

    # --- baseline: 3DGRT with a stretched icosahedron per Gaussian -----
    baseline_structure = build_monolithic(cloud, "20-tri")
    baseline = GaussianRayTracer(cloud, baseline_structure, TraceConfig(k=8))
    base_result = baseline.render(camera)
    base_timing = replay(base_result.traces, gpu)
    base_result.drop_traces()
    print(f"baseline  BVH {baseline_structure.total_bytes / 2**20:6.1f} MB   "
          f"model time {base_timing.time_ms:7.3f} ms   "
          f"L1 hit rate {base_timing.l1_hit_rate:.2f}")

    # --- GRTX: shared unit-sphere BLAS + checkpointed traversal --------
    grtx_structure = build_two_level(cloud, blas_kind="sphere")
    grtx = GaussianRayTracer(cloud, grtx_structure,
                             TraceConfig(k=8, checkpointing=True))
    grtx_result = grtx.render(camera)
    grtx_timing = replay(grtx_result.traces, gpu)
    grtx_result.drop_traces()
    print(f"GRTX      BVH {grtx_structure.total_bytes / 2**20:6.1f} MB   "
          f"model time {grtx_timing.time_ms:7.3f} ms   "
          f"L1 hit rate {grtx_timing.l1_hit_rate:.2f}")

    print(f"speedup: {base_timing.time_ms / grtx_timing.time_ms:.2f}x   "
          f"node fetches: {base_timing.node_fetches} -> {grtx_timing.node_fetches}")
    quality = psnr(grtx_result.image, base_result.image)
    print(f"image agreement: {quality:.1f} dB PSNR "
          f"(proxy vs exact primitive sort keys)")

    write_ppm(OUT_DIR / "quickstart_baseline.ppm", base_result.image)
    write_ppm(OUT_DIR / "quickstart_grtx.ppm", grtx_result.image)
    print(f"wrote {OUT_DIR / 'quickstart_baseline.ppm'} and quickstart_grtx.ppm")


if __name__ == "__main__":
    main()
