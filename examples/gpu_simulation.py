#!/usr/bin/env python3
"""Drive the GPU timing model directly: caches, fetch traces, vendors.

Shows the lower-level API underneath the figures: render once, keep the
per-ray fetch traces, and replay them under different hardware
configurations (RTX-like vs AMD-like, prefetcher on/off, warp-buffer
depth) without re-rendering.

Run:  python examples/gpu_simulation.py
"""

from __future__ import annotations

import dataclasses

from repro import (
    GaussianRayTracer,
    GpuConfig,
    TraceConfig,
    build_two_level,
    default_camera_for,
    make_workload,
    replay,
)


def describe(name: str, report) -> None:
    print(f"{name:<28} cycles {report.cycles:12,.0f}   "
          f"fetches {report.node_fetches:8d}   "
          f"L1 {report.l1_hit_rate:5.2f}   "
          f"L2 acc {report.l2_accesses:8d}   "
          f"avg lat {report.avg_fetch_latency:6.1f}")


def main() -> None:
    cloud = make_workload("truck", scale=1 / 800)
    structure = build_two_level(cloud, "sphere")
    camera = default_camera_for(cloud, 20, 20)
    renderer = GaussianRayTracer(cloud, structure,
                                 TraceConfig(k=8, checkpointing=True))
    result = renderer.render(camera)
    print(f"functional render: {result.stats.n_rays} rays, "
          f"{result.stats.rounds_total} tracing rounds, "
          f"{result.stats.total_visits} node visits "
          f"({result.stats.unique_visits} unique)\n")

    rtx = GpuConfig.rtx_like()
    describe("RTX-like (Table I)", replay(result.traces, rtx))
    describe("AMD-like (Section VI)", replay(result.traces, GpuConfig.amd_like()))
    describe("no sibling prefetcher",
             replay(result.traces, dataclasses.replace(rtx, prefetch_enabled=False)))
    describe("warp buffer = 2",
             replay(result.traces, dataclasses.replace(rtx, warp_buffer_size=2)))
    describe("warp buffer = 16",
             replay(result.traces, dataclasses.replace(rtx, warp_buffer_size=16)))

    print("\nSame functional trace, different microarchitectures: the timing")
    print("model replays recorded byte-accurate node fetches, so hardware")
    print("what-ifs never require re-rendering.")


if __name__ == "__main__":
    main()
