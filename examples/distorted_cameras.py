#!/usr/bin/env python3
"""Distorted and panoramic cameras — the workloads that motivate ray tracing.

The paper's introduction singles out "scenes captured with highly
distorted cameras — essential for domains such as robotics and
autonomous vehicles" as something rasterization struggles with: a
rasterizer projects every Gaussian through one linear projection, while a
ray tracer only needs a ray per pixel. This example renders one scene
through a 180-degree fisheye, a full 360x180 panorama, and a
barrel-distorted calibrated pinhole, writes the PPMs, and prints how fast
the *best possible* single-projection approximation degrades with field
of view.

Run:  python examples/distorted_cameras.py
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro import (
    GaussianRayTracer,
    GpuConfig,
    TraceConfig,
    build_two_level,
    default_camera_for,
    make_workload,
    replay,
    write_ppm,
)
from repro.render.cameras import (
    DistortedPinholeCamera,
    EquirectangularCamera,
    FisheyeCamera,
    rasterizer_fisheye_error,
)

OUT_DIR = Path(__file__).parent
SIZE = 48


def main() -> None:
    cloud = make_workload("train", scale=1 / 600)
    structure = build_two_level(cloud, blas_kind="sphere")
    renderer = GaussianRayTracer(cloud, structure, TraceConfig(k=8, checkpointing=True))
    pin = default_camera_for(cloud, SIZE, SIZE)
    gpu = GpuConfig.rtx_like()
    print(f"scene: {cloud.name}, {len(cloud)} Gaussians\n")

    cameras = {
        "fisheye_180": FisheyeCamera(
            pin.position, pin.look_at, pin.up, SIZE, SIZE, fov=np.pi),
        "fisheye_220": FisheyeCamera(
            pin.position, pin.look_at, pin.up, SIZE, SIZE, fov=np.deg2rad(220)),
        "panorama_360": EquirectangularCamera(
            pin.position, pin.look_at, pin.up, 2 * SIZE, SIZE),
        "barrel_pinhole": DistortedPinholeCamera(
            pin.position, pin.look_at, pin.up, SIZE, SIZE,
            fov_y=pin.fov_y, k1=-0.25, k2=0.05),
    }

    for name, camera in cameras.items():
        result = renderer.render(camera)
        timing = replay(result.traces, gpu)
        result.drop_traces()
        path = OUT_DIR / f"{name}.ppm"
        write_ppm(path, result.image)
        print(f"{name:15s}  {camera.n_pixels:5d} rays   "
              f"{timing.time_ms:7.3f} model-ms   "
              f"L1 hit {timing.l1_hit_rate:.2f}   -> {path.name}")

    print("\nBest single-projection (rasterizer) approximation error of a "
          "fisheye,\nmean radians of angular error across the image:")
    for deg in (30, 60, 90, 120, 150, 170):
        err = rasterizer_fisheye_error(np.deg2rad(deg))
        bar = "#" * int(err * 120)
        print(f"  fov {deg:3d} deg   {err:7.4f} rad  {bar}")
    print("\nThe ray tracer renders each of these models exactly; a "
          "rasterizer's\nsingle linear projection cannot express the 360 "
          "panorama at all.")


if __name__ == "__main__":
    main()
