#!/usr/bin/env python3
"""Regenerate any table or figure of the paper from the command line.

Usage:
    python examples/reproduce_paper.py --list
    python examples/reproduce_paper.py fig13
    python examples/reproduce_paper.py fig13 fig14 --scenes train bonsai
    python examples/reproduce_paper.py all

Scale knobs: set GRTX_BENCH_SCALE / GRTX_BENCH_RES before launching to
trade fidelity for runtime (see EXPERIMENTS.md).
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.eval.experiments import ALL_EXPERIMENTS

#: Experiments that take no scene list.
_NO_SCENES = {
    "table1", "table3", "fig19", "ablation-width", "ablation-builder",
    "ablation-treelet", "ablation-dram", "ablation-popping",
    "ablation-divergence", "ablation-cameras",
}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("experiments", nargs="*",
                        help="experiment ids (e.g. fig13), or 'all'")
    parser.add_argument("--scenes", nargs="*", default=None,
                        help="subset of scenes (default: all six)")
    parser.add_argument("--list", action="store_true", help="list experiment ids")
    args = parser.parse_args(argv)

    if args.list or not args.experiments:
        print("available experiments:")
        for exp_id in ALL_EXPERIMENTS:
            print(f"  {exp_id}")
        return 0

    wanted = list(ALL_EXPERIMENTS) if args.experiments == ["all"] else args.experiments
    unknown = [e for e in wanted if e not in ALL_EXPERIMENTS]
    if unknown:
        print(f"unknown experiments: {', '.join(unknown)}", file=sys.stderr)
        return 1

    for exp_id in wanted:
        fn = ALL_EXPERIMENTS[exp_id]
        started = time.time()
        result = fn() if exp_id in _NO_SCENES or not args.scenes else fn(args.scenes)
        print(result.table)
        print(f"({time.time() - started:.1f}s)\n")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
