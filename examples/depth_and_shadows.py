#!/usr/bin/env python3
"""Programmable pipeline demo: depth maps and transparent shadows.

Uses the Figure 2-style shader pipeline (any-hit / closest-hit / miss
callbacks) instead of the fixed k-buffer renderer:

* a depth pipeline extracts the first *solid* surface along each ray;
* a shadow pipeline accumulates transmittance toward a point light and
  modulates the depth image, giving Gaussian-scene shadows — one of the
  effects the paper lists as a reason to ray trace Gaussians at all.

Run:  python examples/depth_and_shadows.py
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro import build_two_level, default_camera_for, make_workload, write_ppm
from repro.math3d import normalize
from repro.rt import DepthPayload, SceneShading, ShadowPayload, depth_pipeline, shadow_pipeline

OUT_DIR = Path(__file__).parent


def main() -> None:
    cloud = make_workload("room", scale=1 / 800)
    structure = build_two_level(cloud, "sphere")
    shading = SceneShading(cloud)
    camera = default_camera_for(cloud, 28, 28)
    light = cloud.means.mean(axis=0) + np.array([0.0, 0.0, 18.0])

    depth = depth_pipeline(structure, shading, alpha_threshold=0.25)
    shadows = shadow_pipeline(structure, shading)

    bundle = camera.generate_rays()
    depth_img = np.zeros((camera.height, camera.width))
    lit_img = np.zeros((camera.height, camera.width))
    hits = 0
    for i in range(len(bundle)):
        origin, direction = bundle.origins[i], bundle.directions[i]
        payload = depth.trace_ray(origin, direction, DepthPayload())
        y, x = divmod(int(bundle.pixel_ids[i]), camera.width)
        if not payload.hit:
            continue
        hits += 1
        depth_img[y, x] = payload.depth
        surface = origin + payload.depth * direction
        to_light = normalize(light - surface)
        shadow = shadows.trace_ray(surface + 1e-3 * to_light, to_light, ShadowPayload())
        lit_img[y, x] = shadow.transmittance

    print(f"{hits}/{camera.n_pixels} rays hit a solid surface")
    finite = depth_img[depth_img > 0]
    print(f"depth range: {finite.min():.2f} .. {finite.max():.2f}")
    print(f"mean light visibility on surfaces: {lit_img[depth_img > 0].mean():.2f}")

    # Normalize depth for viewing and tint shadowed regions.
    view = np.zeros((camera.height, camera.width, 3))
    if finite.size:
        norm_depth = np.where(depth_img > 0, 1.0 - (depth_img - finite.min())
                              / max(finite.max() - finite.min(), 1e-9), 0.0)
        view[..., 0] = norm_depth * (0.4 + 0.6 * lit_img)
        view[..., 1] = norm_depth * (0.4 + 0.6 * lit_img)
        view[..., 2] = norm_depth
    write_ppm(OUT_DIR / "depth_shadows.ppm", view)
    print(f"wrote {OUT_DIR / 'depth_shadows.ppm'}")


if __name__ == "__main__":
    main()
