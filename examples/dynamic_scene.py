#!/usr/bin/env python3
"""Dynamic multi-object Gaussian scenes (Section VI of the paper).

Builds a reusable Gaussian asset once, instances it several times under a
scene-level TLAS (the paper's three-level hierarchy: scene TLAS ->
object instances -> shared unit-sphere BLAS), animates one instance, and
shows that motion costs a TLAS refit rather than a rebuild while
instancing keeps memory flat.

Run:  python examples/dynamic_scene.py
"""

from __future__ import annotations

import numpy as np

from repro.bvh import GaussianObject, MultiObjectScene, ObjectPose
from repro.render import GaussianRayTracer, PinholeCamera
from repro.rt import TraceConfig

from repro.gaussians import make_workload


def main() -> None:
    # One asset: a small dense Gaussian object.
    asset_cloud = make_workload("bonsai", scale=1 / 8000)
    asset = GaussianObject(asset_cloud, blas_kind="sphere")
    print(f"asset: {len(asset)} Gaussians, "
          f"object structure {asset.structure.total_bytes / 1024:.1f} KB")

    scene = MultiObjectScene()
    obj = scene.add_object(asset)
    moving = scene.add_instance(obj, ObjectPose.identity())
    for i in range(1, 5):
        scene.add_instance(obj, ObjectPose(
            translation=np.array([14.0 * i, 0.0, 0.0]),
            rotation=np.array([np.cos(0.3 * i), 0.0, 0.0, np.sin(0.3 * i)]),
        ))
    print(f"scene: {scene.n_instances} instances, {scene.n_gaussians} Gaussians")
    print(f"with instancing: {scene.total_bytes() / 1024:8.1f} KB")
    print(f"without sharing: {scene.naive_bytes() / 1024:8.1f} KB")

    camera = PinholeCamera(
        position=np.array([28.0, -70.0, 18.0]),
        look_at=np.array([28.0, 0.0, 0.0]),
        up=np.array([0.0, 0.0, 1.0]),
        width=20, height=12, fov_y=np.deg2rad(55),
    )

    # Animate the first instance along +z; each frame is a pose update
    # (TLAS refit) followed by a render of the flattened scene.
    for frame in range(3):
        scene.move_instance(moving, ObjectPose(
            translation=np.array([0.0, 0.0, 6.0 * frame]),
            rotation=np.array([1.0, 0.0, 0.0, 0.0]),
        ))
        scene.scene_tlas()
        cloud, structure = scene.flatten()
        result = GaussianRayTracer(cloud, structure,
                                   TraceConfig(k=8, checkpointing=True)).render(
            camera, keep_traces=False)
        print(f"frame {frame}: image mean {result.image.mean():.4f}  "
              f"(TLAS rebuilds={scene.stats.rebuilds}, refits={scene.stats.refits})")

    print("\nObject motion refits the small scene TLAS; topology edits")
    print("(add/remove) rebuild it — identical to conventional dynamic")
    print("rendering, with the shared Gaussian BLAS untouched.")


if __name__ == "__main__":
    main()
