#!/usr/bin/env python3
"""Training substrate demo: fit appearance, then run density control.

The paper evaluates on scenes "trained for 30K iterations" with 3DGRT's
ray-traced training loop. This example exercises the same code path at
toy scale:

1. render ground-truth views from a reference cloud;
2. perturb the cloud's appearance (opacity + SH color) and recover it by
   gradient descent through the multi-round ray tracer (the blend lists
   of the *real* renderer drive the backward pass);
3. run one adaptive-density-control round (prune / split / clone) driven
   by the per-Gaussian blend statistics, and rebuild the acceleration
   structure for the new primitive count;
4. save the result as a 3DGS-convention PLY that any ecosystem viewer
   can open.

Run:  python examples/train_and_densify.py
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro import build_two_level, default_camera_for, make_workload
from repro.gaussians import GaussianCloud, save_ply
from repro.gaussians.densify import collect_stats, densify_round
from repro.gaussians.training import GaussianTrainer, render_views

OUT_DIR = Path(__file__).parent


def main() -> None:
    rng = np.random.default_rng(7)
    reference = make_workload("room", scale=1 / 1200)
    print(f"reference scene: {len(reference)} Gaussians")

    # Ground-truth views from two viewpoints.
    cam_a = default_camera_for(reference, 12, 12)
    cam_b = default_camera_for(reference, 12, 12, fov_y_deg=50.0)
    views = render_views(reference, [cam_a, cam_b])

    # Perturb appearance and recover it.
    corrupted = GaussianCloud(
        means=reference.means,
        scales=reference.scales,
        rotations=reference.rotations,
        opacities=np.clip(
            reference.opacities * rng.uniform(0.5, 1.5, len(reference)),
            0.05, 1.0),
        sh=reference.sh + rng.normal(0.0, 0.15, reference.sh.shape),
        kappa=reference.kappa,
        name=reference.name,
    )
    trainer = GaussianTrainer(corrupted, views, lr=0.08)
    report = trainer.fit(iterations=12, verbose=True)
    drop = report.initial_loss / max(report.final_loss, 1e-12)
    print(f"\nloss {report.initial_loss:.5f} -> {report.final_loss:.5f} "
          f"({drop:.1f}x lower)\n")

    # Density control on the recovered cloud.
    trained = trainer.trained_cloud()
    stats = collect_stats(trained, [cam_a, cam_b])
    outcome = densify_round(trained, stats)
    print(f"density control: pruned {outcome.pruned}, split {outcome.split}, "
          f"cloned {outcome.cloned}  "
          f"({len(trained)} -> {len(outcome.cloud)} Gaussians)")

    # Density control changes the primitive count: the acceleration
    # structure must be rebuilt (refit cannot absorb count changes).
    structure = build_two_level(outcome.cloud, blas_kind="sphere")
    print(f"rebuilt TLAS+sphere structure: {structure.total_bytes / 1024:.1f} KB")

    ply_path = OUT_DIR / "trained_scene.ply"
    save_ply(outcome.cloud, ply_path)
    print(f"saved 3DGS-convention checkpoint -> {ply_path.name}")


if __name__ == "__main__":
    main()
