#!/usr/bin/env python3
"""Secondary-ray effects: reflections and refractions in a Gaussian scene.

Reproduces the Figure 23 setup: a glass sphere and a rectangular mirror
are dropped into a Gaussian scene; primary rays hitting them spawn
refracted/reflected secondary rays that continue through the Gaussian
volume. GRTX-HW's checkpointing is measured separately on primary and
secondary rays — the paper's point is that the benefit is per-ray
(redundancy *within* a ray's rounds), so incoherent secondary rays gain
just as much.

Run:  python examples/secondary_rays.py
"""

from __future__ import annotations

from pathlib import Path

from repro import (
    GaussianRayTracer,
    GpuConfig,
    SceneObjects,
    TraceConfig,
    build_monolithic,
    default_camera_for,
    make_workload,
    replay,
    write_ppm,
)

OUT_DIR = Path(__file__).parent


def main() -> None:
    cloud = make_workload("playroom", scale=1 / 800)
    camera = default_camera_for(cloud, 24, 24)
    objects = SceneObjects.default_for(cloud)
    structure = build_monolithic(cloud, "20-tri")
    gpu = GpuConfig.rtx_like()
    print(f"scene: {cloud.name} + glass sphere + mirror "
          f"({len(cloud)} Gaussians)\n")

    timings = {}
    for label, config in [
        ("baseline", TraceConfig(k=8)),
        ("GRTX-HW", TraceConfig(k=8, checkpointing=True)),
    ]:
        renderer = GaussianRayTracer(cloud, structure, config)
        result = renderer.render(camera, objects=objects)
        timing = replay(result.traces, gpu)
        result.drop_traces()
        timings[label] = timing
        print(f"{label:<9} primary rays: {result.stats.n_primary:4d}  "
              f"secondary rays: {result.stats.n_secondary:4d}  "
              f"model time {timing.time_ms:.3f} ms")
        if label == "baseline":
            image = result.image

    for ray_type in ("primary", "secondary"):
        base = timings["baseline"].label_cycles[ray_type]
        hw = timings["GRTX-HW"].label_cycles[ray_type]
        if hw > 0:
            print(f"GRTX-HW speedup on {ray_type} rays: {base / hw:.2f}x")

    write_ppm(OUT_DIR / "secondary_rays.ppm", image)
    print(f"\nwrote {OUT_DIR / 'secondary_rays.ppm'}")


if __name__ == "__main__":
    main()
