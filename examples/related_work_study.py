#!/usr/bin/env python3
"""Related-work study: why GRTX rather than prior RT accelerators?

Section VII of the paper discusses two prior hardware techniques and why
they fall short for Gaussian ray tracing. This example reproduces both
arguments quantitatively:

* **Ray predictor** (Liu et al., MICRO 2021) — predicts the primitive a
  ray will hit and skips upper-level traversal. Works for ambient
  occlusion (one hit suffices); Gaussian RT needs *all* hits along the
  ray, so a verified prediction covers a sliver of the required work.
* **Treelet prefetching** (Chou et al., MICRO 2023) — hides node-fetch
  latency by prefetching subtrees. Orthogonal to GRTX: it masks latency
  but removes no work, and a sibling prefetcher already captures most of
  the benefit.

Run:  python examples/related_work_study.py
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np

from repro import (
    GaussianRayTracer,
    GpuConfig,
    PinholeCamera,
    TraceConfig,
    build_monolithic,
    build_two_level,
    default_camera_for,
    make_workload,
    replay,
)
from repro.hwsim.treelet import build_treelet_map
from repro.rt import analyze_predictor


def predictor_study(cloud, structure) -> None:
    print("=" * 64)
    print("Ray predictor (MICRO'21) on Gaussian ray tracing")
    print("=" * 64)
    renderer = GaussianRayTracer(cloud, structure, TraceConfig(k=8))
    cam1 = default_camera_for(cloud, 12, 12)
    extent = float(np.abs(cloud.means - cloud.means.mean(0)).max())
    cam2 = PinholeCamera(cam1.position + 0.002 * extent, cam1.look_at,
                         cam1.up, 12, 12, cam1.fov_y)
    report = analyze_predictor(renderer, cam1, cam2)
    print(f"prediction hit rate:        {report.hit_rate:6.1%}   "
          "(the predictor itself works)")
    print(f"Gaussians blended per ray:  {report.mean_blended:6.1f}   "
          "(volume rendering needs them all)")
    print(f"coverage of one prediction: {report.mean_coverage:6.1%}")
    print(f"savable traversal bound:    {report.traversal_savable_fraction:6.1%}")
    print("=> a verified prediction replaces one of many required hits;")
    print("   the full interval traversal still runs (paper Section VII).\n")


def treelet_study(cloud, structure) -> None:
    print("=" * 64)
    print("Treelet prefetching (MICRO'23) vs GRTX")
    print("=" * 64)
    renderer = GaussianRayTracer(cloud, structure, TraceConfig(k=8))
    result = renderer.render(default_camera_for(cloud, 14, 14))
    treelets = build_treelet_map(structure, 1024)

    no_pf = replace(GpuConfig.rtx_like(), prefetch_enabled=False)
    rows = [
        ("no prefetch", replay(result.traces, no_pf)),
        ("treelet prefetch", replay(result.traces, no_pf, treelet_map=treelets)),
        ("sibling prefetch (default)", replay(result.traces, GpuConfig.rtx_like())),
    ]
    for label, timing in rows:
        print(f"{label:28s} fetch latency {timing.avg_fetch_latency:6.1f} cyc   "
              f"L1 hit {timing.l1_hit_rate:.2f}   {timing.time_ms:7.3f} ms")

    # GRTX removes the fetches instead of masking their latency.
    grtx_structure = build_two_level(cloud, blas_kind="sphere")
    grtx = GaussianRayTracer(cloud, grtx_structure,
                             TraceConfig(k=8, checkpointing=True))
    grtx_result = grtx.render(default_camera_for(cloud, 14, 14))
    grtx_timing = replay(grtx_result.traces, GpuConfig.rtx_like())
    base_fetches = replay(result.traces, GpuConfig.rtx_like()).node_fetches
    print(f"{'GRTX (SW+HW)':28s} fetch latency {grtx_timing.avg_fetch_latency:6.1f} cyc   "
          f"L1 hit {grtx_timing.l1_hit_rate:.2f}   {grtx_timing.time_ms:7.3f} ms")
    print(f"=> prefetching hides latency; GRTX removes "
          f"{1 - grtx_timing.node_fetches / base_fetches:.0%} of the fetches.\n")


def main() -> None:
    cloud = make_workload("drjohnson", scale=1 / 700)
    print(f"scene: {cloud.name}, {len(cloud)} Gaussians\n")
    mono = build_monolithic(cloud, "20-tri")
    two = build_two_level(cloud, blas_kind="sphere")
    predictor_study(cloud, two)
    treelet_study(cloud, mono)


if __name__ == "__main__":
    main()
