#!/usr/bin/env python3
"""Compare every acceleration-structure option on one scene.

Reproduces the Section IV design-space discussion in miniature: for each
of the six structure configurations (monolithic 20/80-tri and custom
primitive; TLAS+20/80-tri and TLAS+sphere) it reports BVH size, height,
per-ray traversal work, cache behaviour and modeled render time.

Run:  python examples/compare_accel_structures.py [scene]
"""

from __future__ import annotations

import sys

from repro import (
    GaussianRayTracer,
    GpuConfig,
    TraceConfig,
    build_monolithic,
    build_two_level,
    default_camera_for,
    make_workload,
    replay,
    structure_stats,
)

CONFIGS = [
    ("20-tri monolithic", lambda c: build_monolithic(c, "20-tri")),
    ("80-tri monolithic", lambda c: build_monolithic(c, "80-tri")),
    ("custom monolithic", lambda c: build_monolithic(c, "custom")),
    ("TLAS + 20-tri BLAS", lambda c: build_two_level(c, "icosphere", 0)),
    ("TLAS + 80-tri BLAS", lambda c: build_two_level(c, "icosphere", 1)),
    ("TLAS + sphere BLAS", lambda c: build_two_level(c, "sphere")),
]


def main() -> None:
    scene = sys.argv[1] if len(sys.argv) > 1 else "room"
    cloud = make_workload(scene, scale=1 / 800)
    camera = default_camera_for(cloud, 20, 20)
    gpu = GpuConfig.rtx_like()
    print(f"scene: {scene}, {len(cloud)} Gaussians, {camera.n_pixels} rays\n")
    header = (f"{'structure':<20} {'BVH MB':>8} {'height':>6} {'fetches':>9} "
              f"{'L1 hit':>7} {'lat':>6} {'ms':>8}")
    print(header)
    print("-" * len(header))

    base_ms = None
    for name, build in CONFIGS:
        structure = build(cloud)
        stats = structure_stats(structure)
        renderer = GaussianRayTracer(cloud, structure, TraceConfig(k=8))
        result = renderer.render(camera)
        timing = replay(result.traces, gpu)
        result.drop_traces()
        if base_ms is None:
            base_ms = timing.time_ms
        print(f"{name:<20} {stats.total_mb:8.2f} {stats.height:6d} "
              f"{timing.node_fetches:9d} {timing.l1_hit_rate:7.2f} "
              f"{timing.avg_fetch_latency:6.0f} {timing.time_ms:8.3f}"
              f"   ({base_ms / timing.time_ms:4.2f}x)")

    print("\nThe shared-BLAS structures (GRTX-SW) cut BVH size by an order of")
    print("magnitude and keep the template BLAS resident in the L1 cache.")


if __name__ == "__main__":
    main()
