"""The fault-injection harness and the hardening it drills.

Schedule-grammar parsing and point semantics run in-process; the pool
scenarios pin ``start_method="fork"`` (as in ``test_pool.py``) so the
armed parent schedule reaches workers by inheritance, with ``:once``
token files serializing fleet-wide firings. The end-to-end drill —
serial reference, chaos replay, bit-identity, doctor attribution — is
:func:`repro.chaosdrill.run_drill`, exercised here exactly as the CI
``chaos-smoke`` job runs it.
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

import repro.chaos as chaos
from repro.chaos import ChaosInjectedError, ScheduleError, _parse_entry
from repro.obs import doctor, flight
from repro.obs import events as ev
from repro.pool import RemoteTaskError, WorkerCrashError, WorkerPool

SCALE = 1.0 / 10000.0


# -- module-level task functions (picklable under any start method) ------

def _square(x):
    return x * x


# -----------------------------------------------------------------------

@pytest.fixture
def flight_tmp(tmp_path, monkeypatch):
    """Private flight directory, no rate limiting."""
    fdir = tmp_path / "flight"
    monkeypatch.setenv("REPRO_FLIGHT_DIR", str(fdir))
    flight.configure(min_interval=0.0, enabled=True)
    flight.reset()
    yield fdir
    flight.reset()
    flight.configure(min_interval=flight.DEFAULT_MIN_INTERVAL)


@pytest.fixture
def arm(tmp_path, monkeypatch):
    """Arm a schedule for this process *and* (via env) future workers;
    disarm on exit no matter what fired."""
    token_dir = tmp_path / "chaos-tokens"

    def _arm(spec: str, seed: int = 0):
        monkeypatch.setenv("REPRO_CHAOS", spec)
        monkeypatch.setenv("REPRO_CHAOS_SEED", str(seed))
        monkeypatch.setenv("REPRO_CHAOS_TOKENS", str(token_dir))
        chaos.configure(spec=spec, seed=seed, token_dir=str(token_dir))

    yield _arm
    chaos.reset()


class TestScheduleGrammar:
    def test_hit_list_entry(self):
        entry = _parse_entry("pool.worker.task=kill@2,5:once")
        assert entry.point == "pool.worker.task"
        assert entry.directive == "kill"
        assert entry.hits == frozenset({2, 5})
        assert entry.once
        assert entry.matches(5, seed=0) and not entry.matches(3, seed=0)

    def test_star_matches_every_invocation(self):
        entry = _parse_entry("flight.spool=oserror@*")
        assert all(entry.matches(n, seed=0) for n in (1, 7, 1000))

    def test_probability_is_seed_deterministic(self):
        entry = _parse_entry("serve.request=slow(0.2)@p0.5")
        draws = [entry.matches(n, seed=42) for n in range(1, 200)]
        assert draws == [entry.matches(n, seed=42) for n in range(1, 200)]
        assert any(draws) and not all(draws)
        assert draws != [entry.matches(n, seed=43) for n in range(1, 200)]

    @pytest.mark.parametrize("bad", [
        "pool.worker.task=kill",            # no trigger
        "pool.worker.task@3",               # no directive
        "pool.worker.tsak=kill@3",          # unregistered point
        "pool.worker.task=kill@p1.5",       # probability out of range
        "pool.worker.task=kill@pmany",      # unparseable probability
        "pool.worker.task=kill@0",          # hits are 1-based
        "pool.worker.task=kill@soon",       # unparseable hits
    ])
    def test_malformed_schedules_raise_not_disarm(self, bad):
        with pytest.raises(ScheduleError):
            chaos.configure(spec=bad)
        assert not chaos.active()

    def test_empty_spec_disarms(self, arm):
        arm("registry.disk_load=corrupt@1")
        assert chaos.active()
        chaos.configure(spec="")
        assert not chaos.active()


class TestPointSemantics:
    def test_disarmed_point_is_inert_and_uncounted(self):
        chaos.reset()
        assert chaos.point("pool.worker.task") is None
        # The disarmed fast path must not even touch counters: that is
        # the zero-overhead contract bench_chaos gates.
        assert chaos.invocation_count("pool.worker.task") == 0

    def test_armed_point_fires_on_its_invocation(self, arm, flight_tmp):
        arm("registry.disk_save=oserror@2")
        assert chaos.point("registry.disk_save") is None
        assert chaos.point("registry.disk_save") == "oserror"
        assert chaos.point("registry.disk_save") is None
        (firing,) = chaos.fired()
        assert firing["point"] == "registry.disk_save"
        assert firing["hit"] == 2
        chaos_events = [e for e in flight.events() if e[3] == ev.CHAOS]
        assert len(chaos_events) == 1

    def test_armed_unregistered_name_raises(self, arm):
        arm("registry.disk_save=oserror@1")
        with pytest.raises(ValueError, match="not a registered"):
            chaos.point("registry.disk_svae")

    def test_once_token_claims_across_reconfigures(self, arm):
        spec = "registry.disk_save=oserror@1:once"
        arm(spec)
        assert chaos.point("registry.disk_save") == "oserror"
        # A second process would start its own counters at zero but
        # share the token dir: simulated by reset + re-arm.
        token_dir = os.environ["REPRO_CHAOS_TOKENS"]
        chaos.reset()
        chaos.configure(spec=spec, seed=0, token_dir=token_dir)
        assert chaos.point("registry.disk_save") is None
        assert chaos.fired() == []

    def test_unclaimable_token_dir_skips_instead_of_storming(self, tmp_path):
        blocker = tmp_path / "not-a-dir"
        blocker.write_text("occupied")
        chaos.configure(spec="registry.disk_save=oserror@1:once",
                        token_dir=str(blocker))
        try:
            assert chaos.point("registry.disk_save") is None
        finally:
            chaos.reset()

    def test_execute_error_directives(self):
        with pytest.raises(ChaosInjectedError):
            chaos.execute("serve.request", "error")
        with pytest.raises(OSError, match="injected"):
            chaos.execute("flight.spool", "oserror")

    def test_execute_slow_sleeps_its_argument(self):
        started = time.perf_counter()
        chaos.execute("serve.request", "slow(0.05)")
        assert time.perf_counter() - started >= 0.05

    def test_site_specific_directives_are_noops_in_execute(self):
        chaos.execute("registry.disk_load", "corrupt")
        chaos.execute("pool.worker.result", "unpicklable")


class TestPoolChaos:
    def test_injected_kill_is_requeued_and_attributed(self, arm, flight_tmp):
        arm("pool.worker.task=kill@1:once")
        with WorkerPool(workers=2, start_method="fork") as pool:
            results = [f.result(timeout=60)
                       for f in [pool.submit(_square, n) for n in range(6)]]
            stats = pool.stats()
        assert results == [n * n for n in range(6)]
        assert stats["crashes"] == 1
        assert stats["requeues"] == 1
        bundles = sorted(flight_tmp.glob("incident-*.json"))
        assert bundles
        causes = []
        for bundle in bundles:
            causes += doctor.triage(doctor.load_bundle(bundle))[
                "probable_causes"]
        assert any("injected fault" in cause for cause in causes)

    def test_watchdog_reaps_injected_hang(self, arm, flight_tmp):
        arm("pool.worker.task=hang@1:once")
        with WorkerPool(workers=2, start_method="fork",
                        task_deadline_s=1.0) as pool:
            results = [f.result(timeout=60)
                       for f in [pool.submit(_square, n) for n in range(4)]]
            stats = pool.stats()
        assert results == [n * n for n in range(4)]
        assert stats["deadline_kills"] == 1
        assert stats["crashes"] >= 1

    def test_unpicklable_result_fails_task_not_worker(self, arm, flight_tmp):
        arm("pool.worker.result=unpicklable@1:once")
        with WorkerPool(workers=1, start_method="fork") as pool:
            poisoned = pool.submit(_square, 3)
            with pytest.raises(RemoteTaskError, match="unpicklable"):
                poisoned.result(timeout=60)
            # The worker survived the failed send and serves the next task.
            assert pool.submit(_square, 4).result(timeout=60) == 16
            assert pool.stats()["crashes"] == 0

    def test_dispatch_oserror_retries_on_another_attempt(self, arm,
                                                         flight_tmp):
        arm("pool.dispatch=oserror@1:once")
        with WorkerPool(workers=2, start_method="fork",
                        retry_backoff_s=0.0) as pool:
            assert pool.submit(_square, 5).result(timeout=60) == 25
            stats = pool.stats()
        assert stats["crashes"] == 0
        assert stats["requeues"] == 1

    def test_poison_task_quarantined_with_bundle(self, arm, flight_tmp):
        with WorkerPool(workers=2, start_method="fork",
                        poison_threshold=2, retry_backoff_s=0.0) as pool:
            with pytest.raises(WorkerCrashError, match="quarantined"):
                pool.submit(chaos.poison_task).result(timeout=60)
            stats = pool.stats()
        assert stats["quarantined"] == 1
        assert stats["crashes"] == 2
        reasons = {doctor.load_bundle(b)["reason"]
                   for b in flight_tmp.glob("incident-*.json")}
        assert "poison-task-quarantined" in reasons


class TestServeChaos:
    def _request(self, **overrides):
        from repro.serve import RenderRequest

        defaults = dict(scene="train", scale=SCALE, width=8, height=6)
        defaults.update(overrides)
        return RenderRequest(**defaults)

    def test_injected_request_error_surfaces(self, arm, flight_tmp):
        from repro.serve import RenderServer

        arm("serve.request=error@1")
        with RenderServer(workers=1) as server:
            with pytest.raises(ChaosInjectedError):
                server.render(self._request())
            chaos.configure(spec="")
            assert server.render(self._request()).image.shape == (6, 8, 3)

    def test_registry_corruption_via_chaos_rebuilds(self, arm, tmp_path,
                                                    flight_tmp):
        from repro.serve import SceneRef, SceneRegistry

        cache_dir = tmp_path / "bvh-cache"
        ref = SceneRef("train", SCALE)
        warm = SceneRegistry(cache_dir=cache_dir)
        built = warm.structure(ref, "tlas+sphere")

        arm("registry.disk_load=corrupt@1:once")
        recovering = SceneRegistry(cache_dir=cache_dir)
        structure = recovering.structure(ref, "tlas+sphere")
        assert structure.total_bytes == built.total_bytes
        assert recovering.disk_rejects == 1
        assert recovering.builds == 1

    def test_job_result_timeout_cancels_and_counts(self, flight_tmp):
        from repro.serve import RenderServer

        # One dispatcher, occupied by the first job: the second job is
        # still queued when its wait times out, so the cancel lands and
        # the dispatcher must skip it instead of rendering ghost work.
        with RenderServer(workers=1, submit_workers=1) as server:
            first = server.submit(self._request(width=24, height=24))
            second = server.submit(self._request(k=4))
            with pytest.raises(TimeoutError):
                second.result(timeout=0.001)
            assert second.status == "cancelled"
            assert not second.cancel() or second.future.cancelled()
            first.result(timeout=120)
            server.close()
        assert server.metrics.timed_out == 1
        assert server.metrics.rendered == 1

    def test_circuit_breaker_unit_semantics(self):
        from repro.serve.server import _CircuitBreaker

        breaker = _CircuitBreaker(threshold=2, cooldown_s=0.05)
        assert breaker.allow_pool()
        assert not breaker.record_failure()      # 1 of 2: still closed
        assert breaker.record_failure()          # opens exactly once
        assert not breaker.record_failure()      # already open
        assert breaker.is_open() and not breaker.allow_pool()
        time.sleep(0.06)
        assert breaker.allow_pool()              # half-open probe
        breaker.record_success()
        assert not breaker.is_open()

    def test_pool_crash_falls_back_to_serial_bit_identical(
            self, monkeypatch, flight_tmp):
        from repro.serve import RenderServer
        from repro.serve.tiles import TileScheduler

        request = self._request(width=16, height=12)
        with RenderServer(workers=1) as reference_server:
            expected = reference_server.render(request).image

        real_render = TileScheduler.render
        pooled_calls = {"n": 0}

        def sabotaged(self, *args, **kwargs):
            if not kwargs.get("force_serial") and self.workers > 1:
                pooled_calls["n"] += 1
                raise WorkerCrashError("worker massacre (simulated)")
            return real_render(self, *args, **kwargs)

        monkeypatch.setattr(TileScheduler, "render", sabotaged)
        with RenderServer(workers=2, circuit_threshold=1,
                          circuit_cooldown_s=30.0) as server:
            degraded = server.render(request).image
            assert pooled_calls["n"] == 1
            # The breaker is open: the next render goes straight to the
            # serial path without burning another pooled attempt.
            again = server.render(self._request(width=16, height=12, k=4))
            metrics = server.metrics
            gauges = server.stats_report()["server"]
        assert np.array_equal(degraded, expected)
        assert again.image.shape == (12, 16, 3)
        assert pooled_calls["n"] == 1
        assert metrics.pool_fallbacks == 1
        assert gauges["gauge.circuit_open"] == 1
        reasons = {doctor.load_bundle(b)["reason"]
                   for b in flight_tmp.glob("incident-*.json")}
        assert "pool-circuit-open" in reasons


class TestChaosDrill:
    def test_drill_end_to_end(self, flight_tmp):
        from repro.chaosdrill import run_drill

        summary = run_drill()
        assert summary["failures"] == []
        assert summary["ok"]
        assert summary["bit_identical"]
        assert summary["pool"]["deadline_kills"] >= 1
        assert summary["pool"]["quarantined"] >= 1
        assert summary["registry"]["disk_rejects"] >= 1
        assert "pool.worker.task:kill" in summary["attributed_faults"]
        assert "pool.worker.task:hang" in summary["attributed_faults"]
