"""Tests for the evaluation harness and experiment runners.

These run the actual experiment functions at a drastically reduced scale
(set through the harness module attributes) so they verify wiring and the
*direction* of each claim without benchmark-scale runtimes.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro.eval.harness as harness
from repro.eval import experiments as exp
from repro.eval.report import format_table, geomean

TEST_SCALE = 1.0 / 4000.0
TEST_RES = (6, 6)


@pytest.fixture(scope="module", autouse=True)
def small_bench_scale():
    """Shrink the harness defaults for the duration of this module."""
    old_scale, old_res = harness.BENCH_SCALE, harness.BENCH_RESOLUTION
    harness.BENCH_SCALE = TEST_SCALE
    harness.BENCH_RESOLUTION = TEST_RES
    exp.BENCH_SCALE = TEST_SCALE
    exp.BENCH_RESOLUTION = TEST_RES
    harness.clear_caches()
    yield
    harness.BENCH_SCALE, harness.BENCH_RESOLUTION = old_scale, old_res
    exp.BENCH_SCALE, exp.BENCH_RESOLUTION = old_scale, old_res
    harness.clear_caches()


class TestReport:
    def test_geomean(self):
        assert geomean([1.0, 4.0]) == pytest.approx(2.0)
        assert geomean([]) == 0.0

    def test_format_table(self):
        text = format_table("T", ["a", "b"], [["x", 1.5], ["y", 2000.0]], notes="n")
        assert "T" in text
        assert "x" in text
        assert "2,000" in text
        assert "note: n" in text


class TestHarness:
    def test_cloud_cached(self):
        a = harness.get_cloud("room", TEST_SCALE)
        b = harness.get_cloud("room", TEST_SCALE)
        assert a is b

    def test_structure_cached_and_typed(self):
        mono = harness.get_structure("room", "20-tri", TEST_SCALE)
        assert mono.proxy == "20-tri"
        tlas = harness.get_structure("room", "tlas+sphere", TEST_SCALE)
        assert tlas.proxy == "tlas+sphere"
        assert harness.get_structure("room", "20-tri", TEST_SCALE) is mono

    def test_unknown_proxy(self):
        with pytest.raises(ValueError):
            harness.get_structure("room", "weird", TEST_SCALE)

    def test_run_config_cached(self):
        a = harness.run_config("room", proxy="tlas+sphere", k=4, scale=TEST_SCALE,
                               resolution=TEST_RES)
        b = harness.run_config("room", proxy="tlas+sphere", k=4, scale=TEST_SCALE,
                               resolution=TEST_RES)
        assert a is b
        assert a.image.shape == (TEST_RES[1], TEST_RES[0], 3)
        assert a.timing.cycles > 0

    def test_run_config_amd(self):
        run = harness.run_config("room", proxy="tlas+sphere", k=4, scale=TEST_SCALE,
                                 resolution=TEST_RES, gpu="amd")
        assert run.timing.cycles > 0

    def test_run_config_unknown_gpu(self):
        with pytest.raises(ValueError):
            harness.run_config("room", gpu="tpu", scale=TEST_SCALE)


class TestExperiments:
    def test_table1_static(self):
        result = exp.table1()
        assert "Warp Buffer Size" in result.table

    def test_table3_static(self):
        result = exp.table3()
        assert "1.05 KB" in result.table

    def test_fig13_direction(self):
        """The core claim at any scale: GRTX beats the baseline."""
        result = exp.fig13(["room"])
        row = result.row("room")
        baseline, grtx = row[1], row[4]
        assert baseline == pytest.approx(1.0)
        assert grtx > 1.0

    def test_fig14_grtx_reduces_fetches(self):
        result = exp.fig14(["room"])
        row = result.row("room")
        assert row[4] < row[1]

    def test_fig07_redundancy_exists(self):
        result = exp.fig07(["room"])
        row = result.row("room")
        total = row[3] + row[4]
        unique = row[1] + row[2]
        assert total >= unique > 0

    def test_fig05_custom_smaller_bvh(self):
        result = exp.fig05(["room"])
        row = result.row("room")
        ico_mb, custom_mb = row[3], row[4]
        assert custom_mb < ico_mb

    def test_fig20_rows(self):
        result = exp.fig20(["room"])
        row = result.row("room")
        assert row[5] >= 0.0

    def test_fig22_sphere_speedup_positive(self):
        result = exp.fig22(["room"])
        assert result.row("room")[1] > 0.0

    def test_fig24_marks_oom_or_numbers(self):
        result = exp.fig24(["room"])
        row = result.row("room")
        assert len(row) == 5

    def test_experiment_result_helpers(self):
        result = exp.table1()
        assert result.column("parameter")
        with pytest.raises(KeyError):
            result.row("nope")
        with pytest.raises(ValueError):
            result.column("nope")

    def test_all_experiments_registry(self):
        assert "fig13" in exp.ALL_EXPERIMENTS
        assert len(exp.ALL_EXPERIMENTS) >= 22
