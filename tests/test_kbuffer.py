"""Tests for the k-buffer / eviction buffer (Listing 1 semantics)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rt.kbuffer import (
    CHECKPOINT_ENTRY_BYTES,
    EVICTION_ENTRY_BYTES,
    EvictionBuffer,
    KBuffer,
    KBufferEntry,
)


def entry(t: float, gid: int = 0, alpha: float = 0.5) -> KBufferEntry:
    return KBufferEntry(t=t, gaussian_id=gid, alpha=alpha)


class TestKBuffer:
    def test_entry_sizes_match_paper(self):
        assert CHECKPOINT_ENTRY_BYTES == 20
        assert EVICTION_ENTRY_BYTES == 8

    def test_insert_keeps_sorted(self):
        buf = KBuffer(4)
        for t in (3.0, 1.0, 2.0):
            assert buf.insert(entry(t, int(t))) is None
        assert [e.t for e in buf.peek()] == [1.0, 2.0, 3.0]

    def test_not_full_never_rejects(self):
        buf = KBuffer(8)
        for i in range(8):
            assert buf.insert(entry(float(i), i)) is None
        assert buf.full

    def test_full_closer_hit_evicts_farthest(self):
        """Listing 1 / Figure 11 walkthrough: a closer hit displaces the
        old farthest, which is returned for the eviction buffer."""
        buf = KBuffer(4)
        for i, t in enumerate((2.34, 2.53, 2.68, 2.85)):
            buf.insert(entry(t, i))
        rejected = buf.insert(entry(2.6, 99))
        assert rejected is not None
        assert rejected.t == 2.85
        assert 99 in buf
        assert rejected.gaussian_id not in buf

    def test_full_farther_hit_is_its_own_rejection(self):
        """Figure 11: new hit at t=3.2 beyond the k-th (2.85) is rejected
        itself — the shader then *reports* the hit so t_max := 3.2."""
        buf = KBuffer(4)
        for i, t in enumerate((2.34, 2.53, 2.68, 2.85)):
            buf.insert(entry(t, i))
        rejected = buf.insert(entry(3.2, 5))
        assert rejected is not None
        assert rejected.gaussian_id == 5
        assert rejected.t == 3.2
        assert 5 not in buf

    def test_farthest_t(self):
        buf = KBuffer(3)
        assert buf.farthest_t == float("inf")
        buf.insert(entry(1.5, 1))
        assert buf.farthest_t == 1.5

    def test_drain_resets(self):
        buf = KBuffer(4)
        buf.insert(entry(1.0, 1))
        drained = buf.drain()
        assert len(drained) == 1
        assert len(buf) == 0
        assert 1 not in buf

    def test_membership_follows_eviction(self):
        buf = KBuffer(2)
        buf.insert(entry(1.0, 10))
        buf.insert(entry(2.0, 20))
        buf.insert(entry(1.5, 30))  # evicts 20
        assert 30 in buf and 10 in buf and 20 not in buf

    def test_rejects_bad_k(self):
        with pytest.raises(ValueError):
            KBuffer(0)

    def test_insertions_counter(self):
        buf = KBuffer(2)
        for i in range(5):
            buf.insert(entry(float(i), i))
        assert buf.insertions == 5

    @given(st.lists(st.floats(0.01, 100, allow_nan=False), min_size=1, max_size=60),
           st.integers(1, 16))
    @settings(max_examples=60)
    def test_property_keeps_k_closest(self, ts, k):
        """After any insertion sequence, the buffer holds exactly the k
        smallest distances (ties broken by arrival)."""
        buf = KBuffer(k)
        for i, t in enumerate(ts):
            buf.insert(entry(t, i))
        expected = sorted(ts)[:k]
        got = [e.t for e in buf.peek()]
        assert got == sorted(got)
        assert len(got) == min(k, len(ts))
        np.testing.assert_allclose(got, expected)


class TestEvictionBuffer:
    def test_high_water(self):
        buf = EvictionBuffer()
        for i in range(5):
            buf.push(entry(float(i), i))
        buf.drain_sorted(t_min=-1.0)
        assert buf.high_water == 5
        assert len(buf) == 0

    def test_drain_sorted_orders_and_filters(self):
        buf = EvictionBuffer()
        buf.push(entry(5.0, 1))
        buf.push(entry(2.0, 2))
        buf.push(entry(3.0, 3))
        out = buf.drain_sorted(t_min=2.5)
        assert [e.gaussian_id for e in out] == [3, 1]

    def test_drain_dedups_by_gaussian_keeping_closest(self):
        """The same Gaussian can be evicted twice (e.g. found again via a
        different proxy triangle); replay must blend it once, at the
        nearer depth."""
        buf = EvictionBuffer()
        buf.push(entry(4.0, 7))
        buf.push(entry(3.0, 7))
        out = buf.drain_sorted(t_min=0.0)
        assert len(out) == 1
        assert out[0].t == 3.0

    def test_entries_at_tmin_kept_unless_blended(self):
        """An entry exactly at t_min is only dropped when its Gaussian was
        blended at that depth (double-blend guard); a *different* Gaussian
        whose t ties the round boundary must survive into the next round —
        dropping it made multiround diverge from singleround on tied
        depths."""
        buf = EvictionBuffer()
        buf.push(entry(2.0, 1))
        buf.push(entry(2.0, 2))
        out = buf.drain_sorted(t_min=2.0, blended_at_t_min=frozenset({1}))
        assert [e.gaussian_id for e in out] == [2]
        buf.push(entry(1.5, 3))
        assert buf.drain_sorted(t_min=2.0) == []
