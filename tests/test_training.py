"""Tests for the appearance-training substrate.

The key check is analytic-vs-numeric gradient agreement: the backward
pass through the blending equation must match finite differences of the
actual ray-traced forward render.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.gaussians.training import (
    Adam,
    GaussianTrainer,
    TrainingView,
    render_views,
    _logit,
    _sigmoid,
)
from repro.render import PinholeCamera

from tests.conftest import tiny_cloud


def camera_for(cloud, res=5):
    center = cloud.means.mean(axis=0)
    return PinholeCamera(
        position=center + np.array([0.0, -14.0, 2.0]),
        look_at=center,
        up=np.array([0.0, 0.0, 1.0]),
        width=res, height=res, fov_y=np.deg2rad(45),
    )


@pytest.fixture(scope="module")
def tiny_setup():
    reference = tiny_cloud(n=24, seed=60)
    camera = camera_for(reference)
    views = render_views(reference, [camera])
    return reference, views


class TestAdam:
    def test_descends_quadratic(self):
        params = {"x": np.array([5.0, -3.0])}
        opt = Adam(lr=0.2)
        for _ in range(200):
            opt.step(params, {"x": 2.0 * params["x"]})
        np.testing.assert_allclose(params["x"], 0.0, atol=1e-2)

    def test_independent_params(self):
        params = {"a": np.array([1.0]), "b": np.array([1.0])}
        opt = Adam(lr=0.1)
        opt.step(params, {"a": np.array([1.0]), "b": np.array([-1.0])})
        assert params["a"][0] < 1.0 < params["b"][0]


class TestSigmoid:
    def test_roundtrip(self):
        p = np.array([0.01, 0.3, 0.9, 0.999])
        np.testing.assert_allclose(_sigmoid(_logit(p)), p, atol=1e-6)


class TestGradients:
    def test_analytic_matches_finite_differences(self, tiny_setup):
        """Opacity and SH-DC gradients vs central finite differences of
        the full ray-traced loss."""
        reference, views = tiny_setup
        perturbed = tiny_cloud(n=24, seed=60)
        rng = np.random.default_rng(0)
        perturbed.opacities[:] = np.clip(
            perturbed.opacities + rng.uniform(-0.1, 0.1, 24), 0.05, 0.9
        )
        trainer = GaussianTrainer(perturbed, views, k=8)
        loss0, grads = trainer.loss_and_grads()
        assert loss0 > 0.0

        def loss_at(params):
            saved = {k: v.copy() for k, v in trainer.params.items()}
            trainer.params.update(params)
            value = trainer.loss_and_grads()[0]
            trainer.params.update(saved)
            return value

        eps = 1e-4
        checked = 0
        # Check a handful of opacity logits (pick contributing Gaussians).
        order = np.argsort(-np.abs(grads["opacity_logit"]))
        for gid in order[:4]:
            base = trainer.params["opacity_logit"].copy()
            up, down = base.copy(), base.copy()
            up[gid] += eps
            down[gid] -= eps
            numeric = (loss_at({"opacity_logit": up})
                       - loss_at({"opacity_logit": down})) / (2 * eps)
            if abs(numeric) < 1e-8:
                continue
            assert grads["opacity_logit"][gid] == pytest.approx(numeric, rel=0.05), gid
            checked += 1
        assert checked >= 2

        # Check a couple of SH DC entries.
        order = np.argsort(-np.abs(grads["sh"][:, 0, 0]))
        for gid in order[:3]:
            base = trainer.params["sh"].copy()
            up, down = base.copy(), base.copy()
            up[gid, 0, 0] += eps
            down[gid, 0, 0] -= eps
            numeric = (loss_at({"sh": up}) - loss_at({"sh": down})) / (2 * eps)
            if abs(numeric) < 1e-8:
                continue
            assert grads["sh"][gid, 0, 0] == pytest.approx(numeric, rel=0.05), gid

    def test_zero_loss_at_ground_truth(self, tiny_setup):
        reference, views = tiny_setup
        trainer = GaussianTrainer(reference, views, k=8)
        loss, grads = trainer.loss_and_grads()
        assert loss == pytest.approx(0.0, abs=1e-12)
        np.testing.assert_allclose(grads["sh"], 0.0, atol=1e-9)


class TestFit:
    def test_recovers_perturbed_appearance(self, tiny_setup):
        """Distillation: perturb colors + opacities, fit them back."""
        reference, views = tiny_setup
        perturbed = tiny_cloud(n=24, seed=60)
        rng = np.random.default_rng(1)
        perturbed.sh[:] += rng.normal(0, 0.15, perturbed.sh.shape)
        perturbed.opacities[:] = np.clip(
            perturbed.opacities * rng.uniform(0.6, 1.4, 24), 0.05, 0.95
        )
        trainer = GaussianTrainer(perturbed, views, lr=0.05, k=8)
        report = trainer.fit(iterations=12)
        assert report.final_loss < report.initial_loss * 0.5

    def test_trained_cloud_valid(self, tiny_setup):
        reference, views = tiny_setup
        trainer = GaussianTrainer(tiny_cloud(n=24, seed=60), views)
        trainer.fit(iterations=2)
        cloud = trainer.trained_cloud()
        assert np.all(cloud.opacities > 0.0)
        assert np.all(cloud.opacities <= 1.0)

    def test_requires_views(self):
        with pytest.raises(ValueError):
            GaussianTrainer(tiny_cloud(8), [])
