"""Tests for treelet prefetching and the ray-predictor analysis."""

from dataclasses import replace

import numpy as np
import pytest

from repro import (
    GaussianRayTracer,
    GpuConfig,
    PinholeCamera,
    TraceConfig,
    build_monolithic,
    build_two_level,
    default_camera_for,
    make_workload,
    replay,
)
from repro.bvh.layout import internal_node_bytes
from repro.bvh.node import KIND_INTERNAL
from repro.hwsim.treelet import build_treelet_map
from repro.rt import RayPredictor, analyze_predictor


@pytest.fixture(scope="module")
def scene():
    cloud = make_workload("drjohnson", scale=1 / 1000)
    mono = build_monolithic(cloud, proxy="20-tri")
    two = build_two_level(cloud, blas_kind="sphere")
    return cloud, mono, two


class TestTreeletMap:
    def test_members_disjoint_across_treelets(self, scene):
        _cloud, mono, _two = scene
        tm = build_treelet_map(mono, 1024)
        seen = set()
        for members in tm.values():
            for addr, _size in members:
                assert addr not in seen
                seen.add(addr)

    def test_every_internal_node_covered_once(self, scene):
        # Partitioning: every node is either a treelet root or a member of
        # exactly one treelet.
        _cloud, mono, _two = scene
        tm = build_treelet_map(mono, 1024)
        bvh = mono.bvh
        member_addrs = {addr for members in tm.values() for addr, _ in members}
        root_addrs = set(tm)
        node_addrs = {int(a) for a in bvh.node_addr}
        for addr in node_addrs:
            in_members = addr in member_addrs
            is_root = addr in root_addrs
            # The global root (node 0) may be a pure root; deep nodes may be
            # members; childless roots are absent from the map entirely.
            assert not (in_members and is_root) or addr != int(bvh.node_addr[0])

    def test_budget_respected(self, scene):
        _cloud, mono, _two = scene
        budget = 512
        tm = build_treelet_map(mono, budget)
        node_bytes = internal_node_bytes(mono.bvh.width)
        for members in tm.values():
            used = node_bytes + sum(size for _addr, size in members)
            assert used <= budget

    def test_two_level_includes_blas(self, scene):
        cloud, _mono, _two = scene
        two_ico = build_two_level(cloud, "icosphere", 0)
        tm = build_treelet_map(two_ico, 2048)
        assert len(tm) >= 1

    def test_rejects_bad_budget(self, scene):
        _cloud, mono, _two = scene
        with pytest.raises(ValueError):
            build_treelet_map(mono, 0)

    def test_bigger_budget_fewer_roots(self, scene):
        _cloud, mono, _two = scene
        small = build_treelet_map(mono, 512)
        large = build_treelet_map(mono, 4096)
        assert 0 < len(large) <= len(small)

    def test_budget_below_two_nodes_yields_empty_map(self, scene):
        # A treelet must hold the root plus at least one child; budgets
        # smaller than that cannot form any treelet.
        _cloud, mono, _two = scene
        assert build_treelet_map(mono, 256) == {}


class TestTreeletReplay:
    def test_treelet_prefetch_counts_prefetches(self, scene):
        cloud, mono, _two = scene
        camera = default_camera_for(cloud, 8, 8)
        result = GaussianRayTracer(cloud, mono, TraceConfig(k=8)).render(camera)
        tm = build_treelet_map(mono, 1024)
        config = replace(GpuConfig.rtx_like(), prefetch_enabled=False)
        base = replay(result.traces, config)
        with_treelet = replay(result.traces, config, treelet_map=tm)
        assert with_treelet.prefetches > base.prefetches

    def test_treelet_improves_no_prefetch_baseline(self, scene):
        cloud, mono, _two = scene
        camera = default_camera_for(cloud, 10, 10)
        result = GaussianRayTracer(cloud, mono, TraceConfig(k=8)).render(camera)
        tm = build_treelet_map(mono, 1024)
        config = replace(GpuConfig.rtx_like(), prefetch_enabled=False)
        base = replay(result.traces, config)
        with_treelet = replay(result.traces, config, treelet_map=tm)
        assert with_treelet.avg_fetch_latency <= base.avg_fetch_latency


class TestRayPredictor:
    def test_table_learns_and_recalls(self):
        predictor = RayPredictor()
        lo = np.zeros(3)
        extent = np.ones(3)
        origins = np.array([[0.5, 0.5, 0.5]])
        directions = np.array([[1.0, 0.0, 0.0]])
        predictor.train(origins, directions, [42], lo, extent)
        assert predictor.entries == 1
        assert predictor.predict(origins[0], directions[0], lo, extent) == 42

    def test_nearby_directions_share_entries(self):
        predictor = RayPredictor(angular_bins=8)
        lo = np.zeros(3)
        extent = np.ones(3)
        o = np.array([0.5, 0.5, 0.5])
        d1 = np.array([1.0, 0.001, 0.0])
        d2 = np.array([1.0, -0.001, 0.0])
        predictor.train(o[None], d1[None], [7], lo, extent)
        assert predictor.predict(o, d2, lo, extent) == 7

    def test_none_hits_are_skipped(self):
        predictor = RayPredictor()
        predictor.train(np.zeros((2, 3)), np.eye(3)[:2], [None, None],
                        np.zeros(3), np.ones(3))
        assert predictor.entries == 0

    def test_rejects_bad_bins(self):
        with pytest.raises(ValueError):
            RayPredictor(angular_bins=0)


class TestPredictorAnalysis:
    def test_coverage_is_small_for_volume_rendering(self, scene):
        # The paper's Section VII argument: high hit rate, low coverage.
        cloud, _mono, two = scene
        renderer = GaussianRayTracer(cloud, two, TraceConfig(k=8))
        cam1 = default_camera_for(cloud, 8, 8)
        cam2 = PinholeCamera(
            cam1.position + 0.02 * np.array([1.0, 0.0, 0.0]),
            cam1.look_at, cam1.up, 8, 8, cam1.fov_y,
        )
        report = analyze_predictor(renderer, cam1, cam2)
        assert report.n_rays == 64
        assert 0.0 <= report.hit_rate <= 1.0
        assert report.mean_blended > 1.0  # many Gaussians per ray
        # One predicted Gaussian can cover only a sliver of the blend list.
        assert report.mean_coverage < 0.5
        assert report.traversal_savable_fraction <= report.mean_coverage + 1e-12

    def test_same_camera_has_high_hit_rate(self, scene):
        cloud, _mono, two = scene
        renderer = GaussianRayTracer(cloud, two, TraceConfig(k=8))
        cam = default_camera_for(cloud, 8, 8)
        report = analyze_predictor(renderer, cam, cam)
        assert report.hit_rate > 0.9
