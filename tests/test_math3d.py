"""Unit and property tests for the math3d package."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.math3d import (
    AffineTransform,
    compose_trs,
    cross,
    dot,
    invert_rigid_scale,
    norm,
    normalize,
    orthonormal_basis,
    quat_identity,
    quat_multiply,
    quat_normalize,
    quat_random,
    quat_to_rotation_matrix,
)

finite_vec = arrays(
    np.float64, (3,),
    elements=st.floats(-100, 100, allow_nan=False, allow_infinity=False),
)


class TestVec:
    def test_dot_matches_numpy(self):
        a = np.array([1.0, 2.0, 3.0])
        b = np.array([4.0, -5.0, 6.0])
        assert dot(a, b) == pytest.approx(np.dot(a, b))

    def test_dot_batched(self):
        a = np.arange(12.0).reshape(4, 3)
        b = np.ones((4, 3))
        assert dot(a, b).shape == (4,)
        np.testing.assert_allclose(dot(a, b), a.sum(axis=1))

    def test_normalize_unit_length(self):
        v = normalize(np.array([3.0, 4.0, 0.0]))
        np.testing.assert_allclose(v, [0.6, 0.8, 0.0])

    def test_normalize_zero_vector_is_zero(self):
        np.testing.assert_array_equal(normalize(np.zeros(3)), np.zeros(3))

    def test_normalize_batch_mixed(self):
        vecs = np.array([[2.0, 0.0, 0.0], [0.0, 0.0, 0.0]])
        out = normalize(vecs)
        np.testing.assert_allclose(out[0], [1.0, 0.0, 0.0])
        np.testing.assert_array_equal(out[1], np.zeros(3))

    @given(finite_vec)
    @settings(max_examples=50)
    def test_normalize_idempotent(self, v):
        once = normalize(v)
        twice = normalize(once)
        np.testing.assert_allclose(once, twice, atol=1e-12)

    def test_cross_right_handed(self):
        np.testing.assert_allclose(
            cross(np.array([1.0, 0, 0]), np.array([0, 1.0, 0])), [0, 0, 1.0]
        )

    def test_norm(self):
        assert norm(np.array([0.0, 3.0, 4.0])) == pytest.approx(5.0)

    def test_orthonormal_basis_properties(self):
        u, v, w = orthonormal_basis(np.array([0.3, -0.7, 0.65]))
        for a in (u, v, w):
            assert np.linalg.norm(a) == pytest.approx(1.0)
        assert abs(np.dot(u, v)) < 1e-12
        assert abs(np.dot(u, w)) < 1e-12
        np.testing.assert_allclose(np.cross(u, v), w, atol=1e-12)

    def test_orthonormal_basis_axis_aligned(self):
        # The helper-vector switch must not break for near-x directions.
        u, v, w = orthonormal_basis(np.array([1.0, 1e-3, 0.0]))
        np.testing.assert_allclose(np.cross(u, v), w, atol=1e-12)

    def test_orthonormal_basis_rejects_batch(self):
        with pytest.raises(ValueError):
            orthonormal_basis(np.ones((2, 3)))


class TestQuaternion:
    def test_identity_shape(self):
        q = quat_identity(5)
        assert q.shape == (5, 4)
        np.testing.assert_array_equal(q[:, 0], 1.0)

    def test_identity_rotation_matrix(self):
        rot = quat_to_rotation_matrix(np.array([1.0, 0.0, 0.0, 0.0]))
        np.testing.assert_allclose(rot, np.eye(3), atol=1e-15)

    def test_90deg_about_z(self):
        s = np.sin(np.pi / 4)
        rot = quat_to_rotation_matrix(np.array([np.cos(np.pi / 4), 0, 0, s]))
        np.testing.assert_allclose(rot @ [1, 0, 0], [0, 1, 0], atol=1e-12)

    def test_normalize_degenerate_becomes_identity(self):
        q = quat_normalize(np.zeros(4))
        np.testing.assert_array_equal(q, [1.0, 0.0, 0.0, 0.0])

    def test_rotation_matrices_are_orthogonal(self):
        rng = np.random.default_rng(1)
        q = quat_random(64, rng)
        rots = quat_to_rotation_matrix(q)
        eye = np.einsum("nij,nkj->nik", rots, rots)
        np.testing.assert_allclose(eye, np.broadcast_to(np.eye(3), eye.shape), atol=1e-12)

    def test_rotation_matrices_det_one(self):
        rng = np.random.default_rng(2)
        rots = quat_to_rotation_matrix(quat_random(32, rng))
        np.testing.assert_allclose(np.linalg.det(rots), 1.0, atol=1e-12)

    def test_multiply_matches_matrix_product(self):
        rng = np.random.default_rng(3)
        qa, qb = quat_random(8, rng), quat_random(8, rng)
        qc = quat_multiply(qa, qb)
        ra = quat_to_rotation_matrix(qa)
        rb = quat_to_rotation_matrix(qb)
        rc = quat_to_rotation_matrix(qc)
        np.testing.assert_allclose(rc, ra @ rb, atol=1e-10)

    def test_random_unit_norm(self):
        rng = np.random.default_rng(4)
        q = quat_random(100, rng)
        np.testing.assert_allclose(np.linalg.norm(q, axis=1), 1.0, atol=1e-12)


class TestTransforms:
    def _random_trs(self, seed: int, n: int = 16):
        rng = np.random.default_rng(seed)
        rot = quat_to_rotation_matrix(quat_random(n, rng))
        scale = np.exp(rng.uniform(-1.0, 1.0, size=(n, 3)))
        trans = rng.uniform(-5, 5, size=(n, 3))
        return trans, rot, scale

    def test_compose_invert_roundtrip(self):
        trans, rot, scale = self._random_trs(0)
        fwd = compose_trs(trans, rot, scale)
        inv = invert_rigid_scale(trans, rot, scale)
        rng = np.random.default_rng(9)
        pts = rng.uniform(-3, 3, size=(16, 3))
        np.testing.assert_allclose(inv.apply_point(fwd.apply_point(pts)), pts, atol=1e-9)

    def test_invert_matches_generic_inverse(self):
        trans, rot, scale = self._random_trs(1)
        fwd = compose_trs(trans, rot, scale)
        fast = invert_rigid_scale(trans, rot, scale)
        generic = fwd.inverse()
        np.testing.assert_allclose(fast.linear, generic.linear, atol=1e-9)
        np.testing.assert_allclose(fast.offset, generic.offset, atol=1e-9)

    def test_unit_sphere_maps_to_ellipsoid_surface(self):
        trans, rot, scale = self._random_trs(2, n=4)
        fwd = compose_trs(trans, rot, scale)
        theta = np.linspace(0, 2 * np.pi, 16, endpoint=False)
        circle = np.stack([np.cos(theta), np.sin(theta), np.zeros_like(theta)], axis=-1)
        for i in range(4):
            single = AffineTransform(fwd.linear[i], fwd.offset[i])
            world = single.apply_point(circle)
            back = single.inverse().apply_point(world)
            np.testing.assert_allclose(np.linalg.norm(back, axis=1), 1.0, atol=1e-9)

    def test_vectors_ignore_translation(self):
        trans, rot, scale = self._random_trs(3, n=1)
        fwd = compose_trs(trans[0], rot[0], scale[0])
        v = np.array([1.0, 2.0, 3.0])
        np.testing.assert_allclose(fwd.apply_vector(v), fwd.linear @ v)

    def test_matrix4_single_only(self):
        trans, rot, scale = self._random_trs(4)
        fwd = compose_trs(trans, rot, scale)
        with pytest.raises(ValueError):
            _ = fwd.matrix4

    def test_matrix4_homogeneous(self):
        trans, rot, scale = self._random_trs(5, n=1)
        fwd = compose_trs(trans[0], rot[0], scale[0])
        mat = fwd.matrix4
        pt = np.array([0.5, -0.25, 2.0, 1.0])
        np.testing.assert_allclose((mat @ pt)[:3], fwd.apply_point(pt[:3]))

    @given(st.integers(0, 2 ** 32 - 1))
    @settings(max_examples=25)
    def test_ray_parameter_preserved_under_affine(self, seed):
        """Affine maps preserve the ray parametrization — the property the
        shared-BLAS design relies on to reuse object-space t values."""
        rng = np.random.default_rng(seed)
        trans, rot, scale = self._random_trs(rng.integers(1 << 30), n=1)
        w2o = invert_rigid_scale(trans[0], rot[0], scale[0])
        o = rng.uniform(-2, 2, 3)
        d = rng.uniform(-1, 1, 3)
        t = float(rng.uniform(0.1, 5.0))
        world_point = o + t * d
        obj_o = w2o.apply_point(o)
        obj_d = w2o.apply_vector(d)
        np.testing.assert_allclose(obj_o + t * obj_d, w2o.apply_point(world_point), atol=1e-9)
