"""Tile decomposition and tiled-render exactness.

The serving contract is that tiling is invisible: any tile size, serial
or parallel, must reproduce the untiled frame bit-for-bit (the scheduler
slices the camera's own ray bundle, so there is no room for last-ulp
drift) and the merged statistics must match the untiled render's.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.eval.harness import build_structure_for
from repro.gaussians import make_workload
from repro.render import GaussianRayTracer, default_camera_for
from repro.rt import TraceConfig
from repro.serve import TileScheduler, split_frame

SCALE = 1.0 / 10000.0

#: (proxy, checkpointing) for the two end-to-end modes the CLI exposes.
MODES = {
    "grtx": ("tlas+sphere", True),
    "baseline": ("20-tri", False),
}


@pytest.fixture(scope="module")
def cloud():
    return make_workload("train", scale=SCALE)


@pytest.fixture(scope="module")
def structures(cloud):
    return {name: build_structure_for(cloud, proxy)
            for name, (proxy, _) in MODES.items()}


def _reference(cloud, structures, mode: str, width: int, height: int):
    _, checkpointing = MODES[mode]
    config = TraceConfig(k=8, checkpointing=checkpointing)
    camera = default_camera_for(cloud, width, height)
    renderer = GaussianRayTracer(cloud, structures[mode], config)
    return renderer.render(camera, keep_traces=False), config, camera


class TestSplitFrame:
    def test_exact_cover_non_divisible(self):
        tiles = split_frame(33, 17, 8, 8)
        assert len(tiles) == 5 * 3
        ids = np.concatenate([t.pixel_ids(33) for t in tiles])
        assert len(ids) == 33 * 17
        assert np.array_equal(np.sort(ids), np.arange(33 * 17))

    def test_frame_smaller_than_tile(self):
        tiles = split_frame(3, 2, 8, 8)
        assert len(tiles) == 1
        assert (tiles[0].width, tiles[0].height) == (3, 2)

    def test_remainder_tile_shapes(self):
        tiles = split_frame(33, 17, 8, 8)
        assert {t.width for t in tiles} == {8, 1}
        assert {t.height for t in tiles} == {8, 1}

    def test_rejects_bad_sizes(self):
        with pytest.raises(ValueError):
            split_frame(0, 4, 8, 8)
        with pytest.raises(ValueError):
            split_frame(4, 4, 0, 8)


@pytest.mark.parametrize("mode", sorted(MODES))
def test_tiled_render_is_pixel_identical(cloud, structures, mode):
    """33x17 frame under 8x8 tiles == untiled frame, both modes."""
    reference, config, camera = _reference(cloud, structures, mode, 33, 17)
    tiled = TileScheduler(tile_size=(8, 8), workers=1).render(
        cloud, structures[mode], config, camera)
    assert np.array_equal(tiled.image, reference.image)
    assert tiled.stats.n_rays == reference.stats.n_rays == 33 * 17
    assert tiled.stats.rounds_total == reference.stats.rounds_total
    assert tiled.stats.blended_total == reference.stats.blended_total
    assert tiled.stats.total_visits == reference.stats.total_visits
    assert tiled.stats.ckpt_high_water == reference.stats.ckpt_high_water


def test_parallel_workers_pixel_identical(cloud, structures):
    """A multiprocessing pool reassembles the same frame as one process."""
    reference, config, camera = _reference(cloud, structures, "grtx", 12, 9)
    parallel = TileScheduler(tile_size=(5, 4), workers=2).render(
        cloud, structures["grtx"], config, camera)
    assert np.array_equal(parallel.image, reference.image)
    assert parallel.stats.n_rays == reference.stats.n_rays
    assert parallel.stats.blended_total == reference.stats.blended_total


def test_single_tile_covers_whole_frame(cloud, structures):
    reference, config, camera = _reference(cloud, structures, "baseline", 9, 7)
    tiled = TileScheduler(tile_size=(64, 64), workers=1).render(
        cloud, structures["baseline"], config, camera)
    assert np.array_equal(tiled.image, reference.image)


def test_keep_traces_roundtrip(cloud, structures):
    """Tiled traces cover every ray so the timing replay still works."""
    from repro.hwsim import GpuConfig, replay

    _, config, camera = _reference(cloud, structures, "grtx", 8, 6)
    tiled = TileScheduler(tile_size=(4, 4), workers=1).render(
        cloud, structures["grtx"], config, camera, keep_traces=True)
    assert len(tiled.traces) == tiled.stats.n_rays
    timing = replay(tiled.traces, GpuConfig.rtx_like())
    assert timing.cycles > 0
