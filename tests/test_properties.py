"""Property-based tests over randomized scenes (hypothesis).

These fuzz the heavy invariants with freshly generated Gaussian clouds:
whatever the scene, checkpointing must be lossless, exact primitive
structures must agree bitwise, and traversal must find exactly the
Gaussians a brute-force intersector finds.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bvh import build_monolithic, build_two_level
from repro.rt import SceneShading, TraceConfig, Tracer

from tests.conftest import tiny_cloud


def _probe_rays(cloud, n_rays: int, seed: int):
    """Rays aimed from outside the cloud toward random Gaussians."""
    rng = np.random.default_rng(seed)
    center = cloud.means.mean(axis=0)
    spread = float(cloud.means.std()) + 1.0
    origins = center + rng.normal(0, 1, (n_rays, 3)) * spread * 4.0
    targets = cloud.means[rng.integers(0, len(cloud), n_rays)]
    directions = targets - origins
    return origins, directions


@st.composite
def cloud_and_seed(draw):
    n = draw(st.integers(8, 64))
    seed = draw(st.integers(0, 10_000))
    return tiny_cloud(n=n, seed=seed), seed


class TestRandomizedInvariants:
    @given(cloud_and_seed(), st.integers(1, 12))
    @settings(max_examples=15, deadline=None)
    def test_checkpointing_lossless_on_random_scenes(self, cloud_seed, k):
        cloud, seed = cloud_seed
        structure = build_two_level(cloud, "sphere")
        shading = SceneShading(cloud)
        base = Tracer(structure, shading, TraceConfig(k=k))
        hw = Tracer(structure, shading, TraceConfig(k=k, checkpointing=True))
        origins, directions = _probe_rays(cloud, 6, seed)
        for o, d in zip(origins, directions):
            a = base.trace_ray(o, d)
            b = hw.trace_ray(o, d)
            np.testing.assert_array_equal(a.color, b.color)
            assert a.transmittance == b.transmittance
            assert a.blended == b.blended

    @given(cloud_and_seed())
    @settings(max_examples=10, deadline=None)
    def test_exact_structures_agree_on_random_scenes(self, cloud_seed):
        cloud, seed = cloud_seed
        sphere = Tracer(build_two_level(cloud, "sphere"), SceneShading(cloud),
                        TraceConfig(k=8))
        custom = Tracer(build_monolithic(cloud, "custom"), SceneShading(cloud),
                        TraceConfig(k=8))
        origins, directions = _probe_rays(cloud, 5, seed + 1)
        for o, d in zip(origins, directions):
            a = sphere.trace_ray(o, d)
            b = custom.trace_ray(o, d)
            np.testing.assert_array_equal(a.color, b.color)

    @given(cloud_and_seed())
    @settings(max_examples=10, deadline=None)
    def test_traversal_finds_exactly_bruteforce_hits(self, cloud_seed):
        """Single-round traversal through the TLAS must report exactly the
        Gaussians a brute-force loop over all of them accepts."""
        cloud, seed = cloud_seed
        shading = SceneShading(cloud)
        tracer = Tracer(build_two_level(cloud, "sphere"), shading,
                        TraceConfig(mode="singleround", record_blended=True))
        origins, directions = _probe_rays(cloud, 4, seed + 2)
        for o, d in zip(origins, directions):
            outcome = tracer.trace_ray(o, d)
            brute = []
            for gid in range(len(cloud)):
                result = shading.evaluate_hit(gid, o, np.asarray(d, dtype=np.float64))
                if result is not None:
                    brute.append((result[0], gid))
            brute.sort()
            got = [(t, g) for g, a, t in (outcome.blend_records or [])]
            # ERT may stop blending early: the blended list must be a
            # prefix of the brute-force depth ordering.
            assert got == brute[: len(got)]
            if not outcome.terminated_early:
                assert len(got) == len(brute)

    @given(cloud_and_seed(), st.sampled_from([2, 4, 8]))
    @settings(max_examples=10, deadline=None)
    def test_image_independent_of_k_random(self, cloud_seed, k):
        cloud, seed = cloud_seed
        structure = build_two_level(cloud, "sphere")
        shading = SceneShading(cloud)
        small = Tracer(structure, shading, TraceConfig(k=k))
        large = Tracer(structure, shading, TraceConfig(k=48))
        origins, directions = _probe_rays(cloud, 4, seed + 3)
        for o, d in zip(origins, directions):
            np.testing.assert_array_equal(
                small.trace_ray(o, d).color, large.trace_ray(o, d).color
            )
