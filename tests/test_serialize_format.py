"""Format-version and corrupt-input handling for structure archives.

Anything unreadable must surface as :class:`StructureFormatError` (so the
scene registry can treat it as a cache miss) — never as a bare KeyError
from deep inside numpy, and never as a silently mis-deserialized tree.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bvh import (
    FORMAT_VERSION,
    StructureFormatError,
    load_structure,
    save_structure,
)
from repro.eval.harness import build_structure_for
from repro.gaussians import make_workload


@pytest.fixture(scope="module")
def structure():
    cloud = make_workload("train", scale=1.0 / 10000.0)
    return build_structure_for(cloud, "tlas+sphere")


def test_round_trip_still_works(structure, tmp_path):
    path = tmp_path / "ok.npz"
    save_structure(structure, path)
    loaded = load_structure(path)
    assert loaded.total_bytes == structure.total_bytes


def test_garbage_bytes_rejected(tmp_path):
    path = tmp_path / "garbage.npz"
    path.write_bytes(b"\x00\x01definitely not a zip archive")
    with pytest.raises(StructureFormatError, match="not a readable"):
        load_structure(path)


def test_plain_npy_rejected(tmp_path):
    """A bare .npy array (np.load succeeds!) is not an archive."""
    path = tmp_path / "bare.npz"
    with open(path, "wb") as handle:
        np.save(handle, np.zeros(4))
    with pytest.raises(StructureFormatError, match="not an npz"):
        load_structure(path)


def test_truncated_archive_rejected(structure, tmp_path):
    path = tmp_path / "truncated.npz"
    save_structure(structure, path)
    path.write_bytes(path.read_bytes()[: path.stat().st_size // 2])
    with pytest.raises(StructureFormatError):
        load_structure(path)


def test_in_member_corruption_rejected(structure, tmp_path):
    """Damage inside a member body (valid zip directory) is caught too.

    np.load parses only the zip directory up front; member bytes
    decompress lazily, so this corruption surfaces mid-deserialization.
    """
    path = tmp_path / "bitrot.npz"
    save_structure(structure, path)
    blob = bytearray(path.read_bytes())
    middle = len(blob) // 2
    blob[middle : middle + 16] = b"\xff" * 16
    path.write_bytes(bytes(blob))
    with pytest.raises(StructureFormatError):
        load_structure(path)


def test_unversioned_archive_rejected(tmp_path):
    """A pre-versioning file (no format_version field) is refused."""
    path = tmp_path / "unversioned.npz"
    np.savez_compressed(path, family=np.array("monolithic"))
    with pytest.raises(StructureFormatError, match="no format version"):
        load_structure(path)


def test_future_version_rejected(tmp_path):
    path = tmp_path / "future.npz"
    np.savez_compressed(path,
                        format_version=np.int64(FORMAT_VERSION + 1),
                        family=np.array("monolithic"))
    with pytest.raises(StructureFormatError, match="unsupported format version"):
        load_structure(path)


def test_unknown_family_rejected(tmp_path):
    path = tmp_path / "family.npz"
    np.savez_compressed(path,
                        format_version=np.int64(FORMAT_VERSION),
                        family=np.array("octree"))
    with pytest.raises(StructureFormatError, match="unknown structure family"):
        load_structure(path)


def test_missing_fields_rejected(tmp_path):
    """Right version + family but no payload arrays: clean refusal."""
    path = tmp_path / "hollow.npz"
    np.savez_compressed(path,
                        format_version=np.int64(FORMAT_VERSION),
                        family=np.array("monolithic"))
    with pytest.raises(StructureFormatError, match="missing field"):
        load_structure(path)


def test_missing_file_is_not_a_format_error(tmp_path):
    with pytest.raises(FileNotFoundError):
        load_structure(tmp_path / "nope.npz")
