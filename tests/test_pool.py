"""The persistent worker pool: scheduling, caching, crashes, identity.

Process-backed tests pin ``start_method="fork"`` (the suite runs on
Linux) so workers inherit the parent's modules instead of re-importing
them — the tests stay fast and deterministic. Scenes are tiny: what is
under test is scheduling and recovery logic, not tracer quality.
"""

from __future__ import annotations

import os
import signal
import threading
import time

import numpy as np
import pytest

from repro.pool import (
    RemoteTaskError,
    SceneCacheMirror,
    StealingScheduler,
    TileCostModel,
    WorkerCrashError,
    WorkerPool,
    available_workers,
    stable_fingerprint,
)

SCALE = 1.0 / 10000.0


# -- module-level task functions (picklable under any start method) ------

def _square(x):
    return x * x


def _sleep_return(x, seconds=0.05):
    time.sleep(seconds)
    return x


def _raise_value_error():
    raise ValueError("intentional")


def _crash_once(flag_path, value):
    """Die hard on first execution, succeed on the retry."""
    if not os.path.exists(flag_path):
        with open(flag_path, "w") as f:
            f.write("x")
        os._exit(17)
    return value


def _always_die():
    os._exit(1)


# -----------------------------------------------------------------------

class TestAvailableWorkers:
    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "3")
        assert available_workers() == 3

    def test_invalid_env_ignored(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "many")
        assert available_workers() >= 1
        monkeypatch.setenv("REPRO_WORKERS", "0")
        assert available_workers() >= 1

    def test_affinity_oserror_degrades(self, monkeypatch):
        monkeypatch.delenv("REPRO_WORKERS", raising=False)

        def broken(_pid):
            raise OSError("no affinity syscall here")

        monkeypatch.setattr(os, "sched_getaffinity", broken, raising=False)
        assert available_workers() >= 1

    def test_serve_available_cores_delegates(self, monkeypatch):
        from repro.serve.tiles import available_cores

        monkeypatch.setenv("REPRO_WORKERS", "5")
        assert available_cores() == 5


class TestStealingScheduler:
    def test_affinity_keeps_a_home(self):
        sched = StealingScheduler(3)
        homes = {sched.place(i, affinity="scene-a") for i in range(5)}
        assert len(homes) == 1

    def test_no_affinity_spreads(self):
        sched = StealingScheduler(2)
        workers = [sched.place(i) for i in range(4)]
        assert set(workers) == {0, 1}

    def test_steal_half_from_richest(self):
        sched = StealingScheduler(2)
        for i in range(6):
            sched.place(i, affinity="hot")
        home = 0 if sched.depth(0) else 1
        thief = 1 - home
        first = sched.next_for(thief)
        assert first is not None
        assert sched.steals == 1 and sched.stolen_tasks == 3
        assert sched.depth(home) == 3
        # Thief kept the rest of the stolen batch locally.
        assert sched.depth(thief) == 2

    def test_own_work_before_stealing(self):
        sched = StealingScheduler(2)
        sched.place(1, affinity="a")
        home = 0 if sched.depth(0) else 1
        sched.place(2, affinity="b")  # lands on the other (least loaded)
        assert sched.next_for(home) == 1
        assert sched.steals == 0

    def test_stealing_disabled(self):
        sched = StealingScheduler(2, stealing=False)
        for i in range(4):
            sched.place(i, affinity="hot")
        idle = 0 if sched.depth(0) == 0 else 1
        assert sched.next_for(idle) is None

    def test_drain_rehomes_affinity(self):
        sched = StealingScheduler(2)
        home = sched.place(1, affinity="scene")
        assert sched.drain_worker(home) == [1]
        assert sched.depth(home) == 0
        # The next placement may pick a fresh (least-loaded) home.
        sched.place(2, affinity="scene")
        assert sched.total_pending() == 1


class TestSceneCacheMirror:
    def test_lru_eviction_order(self):
        mirror = SceneCacheMirror(2)
        assert mirror.touch("a") is None
        assert mirror.touch("b") is None
        mirror.touch("a")  # refresh
        assert mirror.touch("c") == "b"
        assert "a" in mirror and "c" in mirror and "b" not in mirror

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            SceneCacheMirror(0)


class TestFingerprint:
    def test_same_content_same_key(self):
        from repro.gaussians import make_workload

        a = make_workload("train", scale=SCALE, seed=7)
        b = make_workload("train", scale=SCALE, seed=7)
        assert a is not b
        assert stable_fingerprint(a) == stable_fingerprint(b)

    def test_different_content_differs(self):
        from repro.gaussians import make_workload

        a = make_workload("train", scale=SCALE, seed=7)
        b = make_workload("train", scale=SCALE, seed=8)
        assert stable_fingerprint(a) != stable_fingerprint(b)


class TestTileCostModel:
    def test_no_history_returns_none(self):
        model = TileCostModel()
        assert model.plan("scene", 32, 32, 8) is None

    @staticmethod
    def _skewed_model(width=32, height=32):
        """Uniform 8x8 grid where the top-left 8x8 tile is 50x hotter."""
        model = TileCostModel()
        rects, costs = [], []
        for y0 in range(0, height, 8):
            for x0 in range(0, width, 8):
                rects.append((x0, y0, 8, 8))
                costs.append(50.0 if (x0, y0) == (0, 0) else 1.0)
        model.record("scene", width, height, rects, costs)
        return model, rects, costs

    def test_plan_is_exact_partition(self):
        model, _, _ = self._skewed_model()
        rects = model.plan("scene", 32, 32, 16)
        covered = np.zeros((32, 32), dtype=int)
        for x0, y0, w, h in rects:
            covered[y0:y0 + h, x0:x0 + w] += 1
        assert (covered == 1).all()

    def test_plan_balances_skew(self):
        model, rects, costs = self._skewed_model()
        plan = model.plan("scene", 32, 32, len(rects))
        predicted = [model.predicted_cost("scene", r, 32, 32) for r in plan]
        uniform = [model.predicted_cost("scene", r, 32, 32) for r in rects]

        def tail(values):
            return max(values) / (sum(values) / len(values))

        assert tail(predicted) < tail(uniform)
        # The hot corner got split into smaller tiles than the cold bulk.
        hot = [r for r in plan if r[0] < 8 and r[1] < 8]
        assert len(hot) > 1

    def test_plan_respects_resolution_change(self):
        model, _, _ = self._skewed_model()
        rects = model.plan("scene", 64, 48, 12)
        covered = np.zeros((48, 64), dtype=int)
        for x0, y0, w, h in rects:
            covered[y0:y0 + h, x0:x0 + w] += 1
        assert (covered == 1).all()

    def test_record_validates(self):
        model = TileCostModel()
        with pytest.raises(ValueError):
            model.record("s", 8, 8, [(0, 0, 8, 8)], [1.0, 2.0])


class TestWorkerPool:
    def test_submit_map_roundtrip(self):
        with WorkerPool(workers=2, start_method="fork") as pool:
            assert pool.submit(_square, 7).result(timeout=60) == 49
            assert pool.map(_square, range(6)) == [x * x for x in range(6)]
            stats = pool.stats()
        assert stats["tasks_completed"] == 7
        assert stats["tasks_failed"] == 0

    def test_remote_exception_propagates(self):
        with WorkerPool(workers=1, start_method="fork") as pool:
            future = pool.submit(_raise_value_error)
            with pytest.raises(RemoteTaskError, match="ValueError"):
                future.result(timeout=60)
            # The worker survived the exception.
            assert pool.submit(_square, 3).result(timeout=60) == 9

    def test_work_stealing_under_skewed_affinity(self):
        with WorkerPool(workers=2, start_method="fork") as pool:
            futures = [pool.submit(_sleep_return, i, affinity="hot")
                       for i in range(8)]
            assert sorted(f.result(timeout=60) for f in futures) == list(range(8))
            stats = pool.stats()
        assert stats["steals"] >= 1
        assert stats["stolen_tasks"] >= 1

    def test_killed_worker_task_requeued(self, tmp_path):
        with WorkerPool(workers=2, start_method="fork") as pool:
            flag = tmp_path / "crashed-once"
            future = pool.submit(_crash_once, str(flag), 42)
            assert future.result(timeout=120) == 42
            stats = pool.stats()
            assert stats["crashes"] >= 1
            assert stats["requeues"] >= 1
            # Pool is healthy afterwards.
            assert pool.map(_square, [2, 3]) == [4, 9]

    def test_poison_task_fails_after_retries(self):
        with WorkerPool(workers=2, start_method="fork",
                        max_task_retries=1) as pool:
            future = pool.submit(_always_die)
            with pytest.raises(WorkerCrashError):
                future.result(timeout=120)
            assert pool.submit(_square, 5).result(timeout=60) == 25

    def test_external_sigkill_mid_task(self):
        with WorkerPool(workers=2, start_method="fork") as pool:
            futures = [pool.submit(_sleep_return, i, seconds=0.2)
                       for i in range(4)]
            time.sleep(0.05)
            victim = next(p for p in pool.processes if p.is_alive())
            os.kill(victim.pid, signal.SIGKILL)
            assert sorted(f.result(timeout=120) for f in futures) == [0, 1, 2, 3]
            assert pool.stats()["crashes"] >= 1


@pytest.fixture
def flight_tmp(tmp_path, monkeypatch):
    """Route the flight recorder at a per-test directory, no rate limit."""
    from repro.obs import flight

    fdir = tmp_path / "flight"
    monkeypatch.setenv("REPRO_FLIGHT_DIR", str(fdir))
    flight.configure(min_interval=0.0, enabled=True)
    flight.reset()
    yield fdir
    flight.reset()
    flight.configure(min_interval=flight.DEFAULT_MIN_INTERVAL)


class TestCrashForensics:
    """The flight recorder's crash-path contract: a killed worker leaves
    an incident bundle holding its own checkpointed events, and
    ``repro doctor`` can name the culprit from it."""

    def test_sigkill_leaves_bundle_with_dead_workers_checkpoint(
            self, flight_tmp):
        from repro.obs import doctor

        with WorkerPool(workers=2, start_method="fork") as pool:
            futures = [pool.submit(_sleep_return, i, seconds=0.3)
                       for i in range(4)]
            time.sleep(0.1)  # let both workers checkpoint a task start
            victim = next(p for p in pool.processes if p.is_alive())
            victim_pid = victim.pid
            os.kill(victim_pid, signal.SIGKILL)
            assert sorted(f.result(timeout=120)
                          for f in futures) == [0, 1, 2, 3]

        bundles = sorted(flight_tmp.glob("incident-worker-crash-*.json"))
        assert bundles, "worker crash reap did not dump a bundle"
        bundle = doctor.load_bundle(str(bundles[-1]))
        assert doctor.validate_bundle(bundle) == []
        assert bundle["reason"] == "worker-crash"
        assert bundle["context"]["exitcode"] == -signal.SIGKILL
        wid = bundle["context"]["worker"]

        # The bundle holds the *dead* process's checkpoint — pid-matched
        # to the one we killed, not its replacement — and the last
        # checkpointed event is the start of the in-flight task.
        checkpoints = [c for c in bundle["workers"]
                       if c["worker_id"] == wid and c["pid"] == victim_pid]
        assert checkpoints, "dead worker's spooled checkpoint missing"
        last = checkpoints[0]["events"][-1]
        assert last["name"] == "worker.task_start"
        assert last["data"]["task"] == bundle["context"]["task"]

        # Doctor names the crashed worker, the signal, and the recovery.
        report = doctor.render_report(bundle)
        assert f"worker {wid}" in report
        assert "SIGKILL" in report
        assert "requeued" in report
        assert "pool.crashes" in report  # counter anomaly surfaced

    def test_crash_counters_mirrored_into_registry(self, flight_tmp,
                                                   tmp_path):
        from repro.obs import get_registry

        registry = get_registry()
        crashes_before = registry.counter_value("pool.crashes")
        requeues_before = registry.counter_value("pool.requeues")
        with WorkerPool(workers=2, start_method="fork") as pool:
            flag = tmp_path / "crashed-once"
            assert pool.submit(_crash_once, str(flag), 7).result(
                timeout=120) == 7
        assert registry.counter_value("pool.crashes") >= crashes_before + 1
        assert registry.counter_value("pool.requeues") >= requeues_before + 1

    def test_doctor_cli_parses_crash_bundle(self, flight_tmp, tmp_path,
                                            capsys):
        from repro.cli import main

        with WorkerPool(workers=2, start_method="fork") as pool:
            flag = tmp_path / "crashed-once"
            assert pool.submit(_crash_once, str(flag), 9).result(
                timeout=120) == 9
        bundles = sorted(flight_tmp.glob("incident-worker-crash-*.json"))
        assert bundles
        assert main(["doctor", str(bundles[-1])]) == 0
        out = capsys.readouterr().out
        assert "probable cause" in out
        assert "worker" in out

    def test_retries_exhausted_dumps_its_own_bundle(self, flight_tmp):
        with WorkerPool(workers=2, start_method="fork",
                        max_task_retries=1) as pool:
            with pytest.raises(WorkerCrashError):
                pool.submit(_always_die).result(timeout=120)
            # Keep the pool draining so the incident queue flushes.
            assert pool.submit(_square, 5).result(timeout=60) == 25
        assert sorted(
            flight_tmp.glob("incident-task-retries-exhausted-*.json"))

    def test_closed_pool_rejects_submissions(self):
        pool = WorkerPool(workers=1, start_method="fork")
        pool.close()
        with pytest.raises(RuntimeError):
            pool.submit(_square, 1)

    def test_unpicklable_task_fails_without_wedging_the_slot(self):
        """A payload that cannot be shipped fails its own future; the
        worker slot stays usable (regression: it used to stay 'busy'
        forever and close() hung)."""
        with WorkerPool(workers=1, start_method="fork") as pool:
            future = pool.submit(_square, lambda x: x)  # lambdas don't pickle
            with pytest.raises(RemoteTaskError, match="shipped"):
                future.result(timeout=60)
            assert pool.submit(_square, 6).result(timeout=60) == 36
            assert pool.stats()["tasks_failed"] == 1

    def test_single_tile_frame_stays_serial(self):
        """A frame no bigger than one tile must not boot the pool."""
        from repro.eval.harness import build_structure_for
        from repro.gaussians import make_workload
        from repro.render import default_camera_for
        from repro.rt import TraceConfig
        from repro.serve.tiles import TileScheduler

        cloud = make_workload("train", scale=SCALE)
        structure = build_structure_for(cloud, "20-tri")
        with TileScheduler(tile_size=(16, 16), workers=2) as scheduler:
            scheduler.render(cloud, structure, TraceConfig(k=4),
                             default_camera_for(cloud, 6, 5))
            assert scheduler.pool is None


@pytest.fixture(scope="module")
def scene():
    from repro.eval.harness import build_structure_for
    from repro.gaussians import make_workload
    from repro.render import default_camera_for
    from repro.rt import TraceConfig

    cloud = make_workload("train", scale=SCALE)
    structure = build_structure_for(cloud, "tlas+sphere")
    config = TraceConfig(k=8, checkpointing=True)
    camera = default_camera_for(cloud, 15, 11)
    return cloud, structure, config, camera


@pytest.fixture(scope="module")
def reference(scene):
    from repro.render import GaussianRayTracer

    cloud, structure, config, camera = scene
    return GaussianRayTracer(cloud, structure, config).render(camera)


class TestPooledTileIdentity:
    def test_pooled_frames_bit_identical_and_adaptive(self, scene, reference):
        """Frame 1 (uniform tiles) and frame 2 (cost-aware tiles) on a
        warm pool both reproduce the serial frame bit-for-bit."""
        from repro.serve.tiles import TileScheduler

        cloud, structure, config, camera = scene
        with TileScheduler(tile_size=(4, 4), workers=2,
                           start_method="fork") as scheduler:
            first = scheduler.render(cloud, structure, config, camera)
            second = scheduler.render(cloud, structure, config, camera)
            stats = scheduler.pool_stats()
            plans = [tile for tile, _ in scheduler.last_tile_costs]
        for result in (first, second):
            assert np.array_equal(result.image, reference.image)
            assert result.stats.n_rays == reference.stats.n_rays
            assert result.stats.rounds_total == reference.stats.rounds_total
            assert result.stats.blended_total == reference.stats.blended_total
        # Scene shipped once per worker; the warm frame was hash-only.
        assert stats["scene_ships"] == 2
        assert stats["scene_cache_hits"] > 0
        # The adaptive plan still partitions the frame exactly.
        ids = np.concatenate([t.pixel_ids(camera.width) for t in plans])
        assert np.array_equal(np.sort(ids), np.arange(camera.n_pixels))

    def test_frame_exact_after_worker_massacre(self, scene, reference):
        """SIGKILLing every pool worker between frames must not change a
        pixel: tasks are requeued and scenes re-shipped to respawns."""
        from repro.serve.tiles import TileScheduler

        cloud, structure, config, camera = scene
        with TileScheduler(tile_size=(4, 4), workers=2,
                           start_method="fork") as scheduler:
            scheduler.render(cloud, structure, config, camera)
            for proc in scheduler.pool.processes:
                os.kill(proc.pid, signal.SIGKILL)
            result = scheduler.render(cloud, structure, config, camera)
            stats = scheduler.pool_stats()
        assert np.array_equal(result.image, reference.image)
        assert stats["crashes"] >= 2

    def test_shared_pool_across_schedulers(self, scene, reference):
        from repro.serve.tiles import TileScheduler

        cloud, structure, config, camera = scene
        with WorkerPool(workers=2, start_method="fork") as pool:
            a = TileScheduler(tile_size=(8, 8), workers=2, pool=pool)
            b = TileScheduler(tile_size=(5, 3), workers=2, pool=pool)
            image_a = a.render(cloud, structure, config, camera).image
            image_b = b.render(cloud, structure, config, camera).image
            # Schedulers never close a shared pool.
            a.close()
            assert not pool.closed
        assert np.array_equal(image_a, reference.image)
        assert np.array_equal(image_b, reference.image)


class TestPooledCampaign:
    CONFIGS = [
        dict(scene="room", proxy="20-tri", k=4, scale=SCALE, resolution=(5, 5)),
        dict(scene="room", proxy="custom", k=4, scale=SCALE, resolution=(5, 5)),
        dict(scene="train", proxy="20-tri", k=4, scale=SCALE, resolution=(5, 5)),
    ]

    def test_parallel_run_configs_bit_identical(self):
        import repro.eval.harness as harness

        harness.clear_caches()
        serial = [harness.run_config(**cfg) for cfg in self.CONFIGS]
        images = [run.image.copy() for run in serial]
        cycles = [run.timing.cycles for run in serial]

        harness.clear_caches()
        pooled = harness.parallel_run_configs(self.CONFIGS, workers=2)
        try:
            for run, image, cycle in zip(pooled, images, cycles):
                assert np.array_equal(run.image, image)
                assert run.timing.cycles == cycle
            # Results were installed into the local run cache.
            for cfg in self.CONFIGS:
                assert harness.run_config(**cfg) in pooled
        finally:
            harness.clear_caches()

    def test_run_campaign_matches_serial_experiment(self, monkeypatch):
        import repro.eval.harness as harness
        from repro.eval import experiments as exp

        monkeypatch.setattr(harness, "BENCH_SCALE", SCALE)
        monkeypatch.setattr(harness, "BENCH_RESOLUTION", (5, 5))
        monkeypatch.setattr(exp, "SCENES", ["room"])
        harness.clear_caches()
        try:
            serial = exp.fig05()
            harness.clear_caches()
            campaign = exp.run_campaign(["fig05", "table1"], workers=2)
            assert set(campaign) == {"fig05", "table1"}
            assert campaign["fig05"].rows == serial.rows
        finally:
            harness.clear_caches()

    def test_run_campaign_rejects_unknown_ids(self):
        from repro.eval import experiments as exp

        with pytest.raises(ValueError, match="unknown experiment"):
            exp.run_campaign(["fig99"])


class TestBoundedServerSubmit:
    def test_submit_rejects_when_saturated(self):
        from repro.serve import RenderRequest, RenderServer, ServerSaturated

        gate = threading.Event()
        with RenderServer(workers=1, submit_workers=1, max_pending=1) as server:
            real_serve = server._serve

            def gated(request):
                gate.wait(timeout=60)
                return real_serve(request)

            server._serve = gated
            request = RenderRequest(scene="train", scale=SCALE, width=6, height=5)
            first = server.submit(request)
            deadline = time.monotonic() + 30
            while server._queue.qsize() and time.monotonic() < deadline:
                time.sleep(0.005)  # dispatcher picks the job up
            second = server.submit(RenderRequest(scene="train", scale=SCALE,
                                                 width=6, height=5, k=4))
            with pytest.raises(ServerSaturated):
                server.submit(RenderRequest(scene="train", scale=SCALE,
                                            width=6, height=5, k=5))
            assert server.metrics.snapshot()["rejected"] == 1
            gate.set()
            assert first.result(timeout=120).image.shape == (5, 6, 3)
            assert second.result(timeout=120).image.shape == (5, 6, 3)

    def test_snapshot_exposes_load_gauges(self):
        from repro.serve import RenderRequest, RenderServer

        with RenderServer(workers=1) as server:
            server.render(RenderRequest(scene="train", scale=SCALE,
                                        width=6, height=5))
            snapshot = server.metrics.snapshot()
            report = server.stats_report()
        # Gauges are namespaced "gauge.<name>" so a provider key can
        # never shadow a counter of the same name.
        for gauge in ("gauge.queue_depth", "gauge.max_pending",
                      "gauge.dispatchers_busy", "gauge.worker_utilization"):
            assert gauge in snapshot
        assert snapshot["gauge.queue_depth"] == 0
        assert "pool" in report

    def test_pooled_server_render_matches_serial(self):
        """The full serving path through the worker pool: bit-identical
        to a serial server, and the pool shows up in the stats report."""
        from repro.serve import RenderRequest, RenderServer

        request = RenderRequest(scene="train", scale=SCALE, width=9, height=7)
        with RenderServer(workers=1) as serial_server:
            expected = serial_server.render(request).image
        with RenderServer(workers=2, tile_size=(4, 4)) as pooled_server:
            sync = pooled_server.render(request)
            pooled_server._frames.clear()
            job = pooled_server.submit(request)
            async_response = job.result(timeout=300)
            report = pooled_server.stats_report()
        assert np.array_equal(sync.image, expected)
        assert np.array_equal(async_response.image, expected)
        assert report["pool"].get("tasks_completed", 0) > 0
