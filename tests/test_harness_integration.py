"""Integration tests for the evaluation harness plumbing and CLI registry."""

import numpy as np
import pytest

from repro.cli import main
from repro.eval.harness import build_structure_for
from repro.gaussians import make_workload


@pytest.fixture(scope="module")
def cloud():
    return make_workload("playroom", scale=1 / 1500)


class TestBuildStructureFor:
    @pytest.mark.parametrize("proxy,expected", [
        ("20-tri", "20-tri"),
        ("80-tri", "80-tri"),
        ("custom", "custom"),
        ("tlas+20-tri", "tlas+20-tri"),
        ("tlas+80-tri", "tlas+80-tri"),
        ("tlas+sphere", "tlas+sphere"),
    ])
    def test_label_round_trip(self, cloud, proxy, expected):
        structure = build_structure_for(cloud, proxy)
        assert structure.proxy == expected

    def test_unknown_label_rejected(self, cloud):
        with pytest.raises(ValueError, match="unknown proxy"):
            build_structure_for(cloud, "bsp-tree")

    def test_monolithic_larger_than_two_level(self, cloud):
        mono = build_structure_for(cloud, "20-tri")
        two = build_structure_for(cloud, "tlas+20-tri")
        assert mono.total_bytes > two.total_bytes


class TestCliExperimentRegistry:
    def test_static_experiment_runs_end_to_end(self, capsys):
        # table3 recomputes the hardware cost; no rendering involved.
        assert main(["experiment", "table3"]) == 0
        out = capsys.readouterr().out
        assert "1.05" in out  # the paper's headline KB figure

    def test_chart_flag(self, capsys):
        assert main(["experiment", "table3", "--chart"]) == 0
        out = capsys.readouterr().out
        assert "table3" in out

    def test_registry_covers_all_experiments(self):
        from repro.cli import _experiment_registry
        from repro.eval.experiments import ALL_EXPERIMENTS

        registry = _experiment_registry()
        # Every id in ALL_EXPERIMENTS maps to a callable the CLI can find
        # (the CLI uses attribute discovery; names use underscores).
        for exp_id, fn in ALL_EXPERIMENTS.items():
            assert fn.__name__ in registry


class TestExoticCameraIntegration:
    def test_fisheye_renders_on_monolithic_structure(self, cloud):
        from repro import GaussianRayTracer, TraceConfig
        from repro.render import FisheyeCamera, default_camera_for

        pin = default_camera_for(cloud, 6, 6)
        cam = FisheyeCamera(pin.position, pin.look_at, pin.up, 6, 6, fov=np.pi)
        structure = build_structure_for(cloud, "20-tri")
        result = GaussianRayTracer(cloud, structure, TraceConfig(k=8)).render(
            cam, keep_traces=False)
        assert result.image.shape == (6, 6, 3)
        assert np.isfinite(result.image).all()

    def test_fisheye_image_matches_across_structures(self, cloud):
        from repro import GaussianRayTracer, TraceConfig
        from repro.render import FisheyeCamera, default_camera_for

        pin = default_camera_for(cloud, 6, 6)
        cam = FisheyeCamera(pin.position, pin.look_at, pin.up, 6, 6, fov=np.pi)
        images = []
        for proxy in ("custom", "tlas+sphere"):
            structure = build_structure_for(cloud, proxy)
            images.append(GaussianRayTracer(cloud, structure, TraceConfig(k=8))
                          .render(cam, keep_traces=False).image)
        np.testing.assert_array_equal(images[0], images[1])

    def test_checkpointing_lossless_under_fisheye(self, cloud):
        from repro import GaussianRayTracer, TraceConfig
        from repro.render import FisheyeCamera, default_camera_for

        pin = default_camera_for(cloud, 6, 6)
        cam = FisheyeCamera(pin.position, pin.look_at, pin.up, 6, 6,
                            fov=np.deg2rad(200))
        structure = build_structure_for(cloud, "tlas+sphere")
        base = GaussianRayTracer(cloud, structure, TraceConfig(k=4)).render(
            cam, keep_traces=False).image
        hw = GaussianRayTracer(
            cloud, structure, TraceConfig(k=4, checkpointing=True)).render(
            cam, keep_traces=False).image
        np.testing.assert_array_equal(base, hw)


class TestSecondaryRayDivergence:
    def test_divergence_groups_secondary_rays_separately(self, cloud):
        from repro import GaussianRayTracer, TraceConfig
        from repro.hwsim import analyze_divergence
        from repro.render import SceneObjects, default_camera_for

        structure = build_structure_for(cloud, "tlas+sphere")
        renderer = GaussianRayTracer(cloud, structure, TraceConfig(k=8))
        objects = SceneObjects.default_for(cloud)
        result = renderer.render(default_camera_for(cloud, 8, 8), objects=objects)
        assert result.stats.n_secondary > 0
        report = analyze_divergence(result.traces)
        # Secondary rays form their own warps: warp count exceeds the
        # primary-only packing.
        assert report.n_warps >= int(np.ceil(64 / 32)) + 1
