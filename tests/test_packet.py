"""Packet-engine parity and the two PR-2 bugfix regressions.

The packet engine's contract (ISSUE 2): for every supported proxy/mode
combination it renders the scalar tracer's image within 1e-9 per
channel, and the parity-matched functional counters — ``n_rays``,
``blended_total``, ``rays_terminated_early`` — agree exactly.  Alongside
live the regression tests for the equal-t hit drop in multiround
tracing (tied depths must survive k-buffer overflow) and the packet
engine's fallback rules.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bvh import build_monolithic, build_two_level
from repro.gaussians import GaussianCloud
from repro.render import GaussianRayTracer, SceneObjects, default_camera_for
from repro.rt import RayTrace, SceneShading, TraceConfig, Tracer
from repro.rt.packet import PacketTracer, packet_supported
from repro.serve import TileScheduler

from tests.conftest import tiny_cloud

#: The image parity bound from the acceptance criteria.
TOL = 1e-9

#: Counters that must agree exactly between engines.
PARITY_COUNTERS = ("n_rays", "n_primary", "n_secondary",
                   "blended_total", "rays_terminated_early")


@pytest.fixture(scope="module")
def cloud():
    return tiny_cloud(n=120, seed=21)


@pytest.fixture(scope="module")
def opaque_cloud():
    """High-opacity variant so early ray termination actually fires."""
    c = tiny_cloud(n=120, seed=21)
    return GaussianCloud(
        means=c.means, scales=c.scales, rotations=c.rotations,
        opacities=np.clip(c.opacities * 8.0, 0.0, 0.98),
        sh=c.sh, kappa=c.kappa, name="tiny-opaque",
    )


@pytest.fixture(scope="module")
def structures(cloud):
    return {
        "20-tri": build_monolithic(cloud, "20-tri"),
        "custom": build_monolithic(cloud, "custom"),
    }


def render_pair(cloud, structure, config, res=10, objects=None):
    camera = default_camera_for(cloud, res, res)
    scalar = GaussianRayTracer(cloud, structure, config).render(
        camera, objects=objects, keep_traces=False)
    packet_renderer = GaussianRayTracer(cloud, structure, config,
                                        engine="packet")
    assert packet_renderer.engine_active == "packet"
    packet = packet_renderer.render(camera, objects=objects, keep_traces=False)
    return scalar, packet


def assert_parity(scalar, packet):
    assert np.abs(scalar.image - packet.image).max() <= TOL
    for name in PARITY_COUNTERS:
        assert getattr(scalar.stats, name) == getattr(packet.stats, name), name


class TestPacketParity:
    @pytest.mark.parametrize("proxy", ["20-tri", "custom"])
    @pytest.mark.parametrize("mode", ["multiround", "singleround"])
    def test_image_and_counter_parity(self, cloud, structures, proxy, mode):
        scalar, packet = render_pair(
            cloud, structures[proxy], TraceConfig(k=4, mode=mode))
        assert_parity(scalar, packet)

    @pytest.mark.parametrize("proxy", ["20-tri", "custom"])
    @pytest.mark.parametrize("mode", ["multiround", "singleround"])
    def test_parity_with_scene_objects(self, cloud, structures, proxy, mode):
        """Secondary rays (t_clip-truncated primaries + scattered
        continuations) trace through the packet engine too."""
        objects = SceneObjects.default_for(cloud)
        scalar, packet = render_pair(
            cloud, structures[proxy], TraceConfig(k=4, mode=mode),
            objects=objects)
        assert scalar.stats.n_secondary > 0  # the setup must exercise them
        assert_parity(scalar, packet)

    @pytest.mark.parametrize("proxy", ["20-tri", "custom"])
    def test_parity_with_t_clip(self, cloud, structures, proxy):
        """An explicit per-ray segment bound cuts the same hits."""
        structure = structures[proxy]
        config = TraceConfig(k=4)
        shading = SceneShading(cloud)
        scalar = Tracer(structure, shading, config)
        packet = PacketTracer(structure, shading, config)
        bundle = default_camera_for(cloud, 8, 8).generate_rays()
        extent = float(np.linalg.norm(cloud.means.std(axis=0)))
        clip = np.linspace(0.5 * extent, 6.0 * extent,
                           bundle.origins.shape[0])
        got = packet.trace_packet(bundle.origins, bundle.directions, clip)
        clipped_someone = False
        for i in range(bundle.origins.shape[0]):
            unclipped = scalar.trace_ray(
                bundle.origins[i], bundle.directions[i], RayTrace())
            out = scalar.trace_ray(
                bundle.origins[i], bundle.directions[i], RayTrace(),
                t_clip=float(clip[i]))
            clipped_someone |= out.blended != unclipped.blended
            assert np.abs(out.color - got.colors[i]).max() <= TOL
            assert out.blended == got.blended[i]
            assert out.terminated_early == bool(got.terminated[i])
        assert clipped_someone  # the bounds must actually cut hits

    def test_early_termination_parity(self, opaque_cloud):
        """Opaque scenes terminate rays early; the cutoff index must
        match the scalar blend loop exactly."""
        structure = build_monolithic(opaque_cloud, "20-tri")
        scalar, packet = render_pair(
            opaque_cloud, structure, TraceConfig(k=4), res=12)
        assert scalar.stats.rays_terminated_early > 0
        assert_parity(scalar, packet)

    def test_max_rounds_cap_parity(self, cloud, structures):
        """The scalar loop blends at most max_rounds * k hits per ray;
        the packet engine applies the identical cap."""
        config = TraceConfig(k=1, max_rounds=3)
        scalar, packet = render_pair(cloud, structures["20-tri"], config)
        assert_parity(scalar, packet)

    def test_tiled_packet_render_matches_untiled(self, cloud, structures):
        """Rays are independent, so a tiled packet render must be
        bit-identical to the untiled packet render."""
        config = TraceConfig(k=4)
        camera = default_camera_for(cloud, 12, 12)
        whole = GaussianRayTracer(
            cloud, structures["20-tri"], config, engine="packet").render(
                camera, keep_traces=False)
        tiled = TileScheduler(tile_size=(5, 5), workers=1).render(
            cloud, structures["20-tri"], config, camera, engine="packet")
        np.testing.assert_array_equal(whole.image, tiled.image)


class TestEngineSelection:
    def test_unknown_engine_rejected(self, cloud, structures):
        with pytest.raises(ValueError, match="engine"):
            GaussianRayTracer(cloud, structures["20-tri"], TraceConfig(),
                              engine="warp")

    def test_two_level_falls_back_to_scalar(self, cloud):
        tlas = build_two_level(cloud, "sphere")
        renderer = GaussianRayTracer(cloud, tlas, TraceConfig(k=4),
                                     engine="packet")
        assert renderer.engine_active == "scalar"

    def test_checkpointing_falls_back_to_scalar(self, cloud, structures):
        config = TraceConfig(k=4, checkpointing=True)
        renderer = GaussianRayTracer(cloud, structures["20-tri"], config,
                                     engine="packet")
        assert renderer.engine_active == "scalar"

    def test_record_blended_falls_back_to_scalar(self, cloud, structures):
        config = TraceConfig(k=4, record_blended=True)
        renderer = GaussianRayTracer(cloud, structures["20-tri"], config,
                                     engine="packet")
        assert renderer.engine_active == "scalar"

    def test_packet_tracer_rejects_unsupported(self, cloud):
        tlas = build_two_level(cloud, "sphere")
        assert not packet_supported(tlas, TraceConfig())
        with pytest.raises(ValueError, match="packet engine"):
            PacketTracer(tlas, SceneShading(cloud), TraceConfig())

    def test_scalar_keeps_traces_packet_does_not(self, cloud, structures):
        """Per-ray fetch traces are scalar-engine-only."""
        config = TraceConfig(k=4)
        camera = default_camera_for(cloud, 4, 4)
        scalar = GaussianRayTracer(cloud, structures["20-tri"], config)
        packet = GaussianRayTracer(cloud, structures["20-tri"], config,
                                   engine="packet")
        assert scalar.render(camera, keep_traces=True).traces
        assert packet.render(camera, keep_traces=True).traces == []


# ---------------------------------------------------------------------------
# Equal-t regression: a hit whose depth exactly ties the round boundary
# but overflowed the k-buffer must survive into the next round.


def tie_cloud(n_dup: int = 3) -> GaussianCloud:
    """``n_dup`` bit-identical Gaussians: every proxy hit of a ray that
    crosses them reports exactly the same depth."""
    one = np.array([[0.0, 0.0, 0.0]])
    sh = np.zeros((1, 4, 3))
    sh[0, 0] = [0.8, 0.2, 0.1]
    return GaussianCloud(
        means=np.repeat(one, n_dup, axis=0),
        scales=np.full((n_dup, 3), 0.4),
        rotations=np.repeat([[1.0, 0.0, 0.0, 0.0]], n_dup, axis=0),
        opacities=np.full(n_dup, 0.3),
        sh=np.repeat(sh, n_dup, axis=0),
        name="tie",
    )


def trace_one(structure, cloud, config):
    tracer = Tracer(structure, SceneShading(cloud), config)
    # Slightly off-axis so the ray crosses proxy faces in their interior
    # (an exactly-through-a-vertex ray is a degenerate-geometry case,
    # not the tied-depth scenario under test).
    return tracer.trace_ray(
        np.array([0.07, 0.05, -5.0]), np.array([0.0, 0.0, 1.0]), RayTrace())


class TestEqualTDepthRegression:
    @pytest.mark.parametrize("proxy", ["20-tri", "custom"])
    @pytest.mark.parametrize("checkpointing", [False, True])
    def test_tied_hits_survive_kbuffer_overflow(self, proxy, checkpointing):
        """k=1 with three equal-depth Gaussians: each round's boundary t
        ties the overflowed hits, which used to be dropped forever —
        multiround diverged from singleround on tied depths."""
        cloud = tie_cloud(3)
        structure = build_monolithic(cloud, proxy)
        multi = trace_one(structure, cloud,
                          TraceConfig(k=1, checkpointing=checkpointing))
        single = trace_one(structure, cloud,
                           TraceConfig(k=1, mode="singleround"))
        assert single.blended == 3
        assert multi.blended == 3
        np.testing.assert_allclose(multi.color, single.color, atol=1e-12)
        np.testing.assert_allclose(
            multi.transmittance, single.transmittance, atol=1e-12)

    def test_tie_wider_than_kbuffer_advances_frontier(self):
        """Five tied Gaussians through k=2: the boundary cannot advance
        between rounds, so the blended-at-boundary set must accumulate
        (and never double-blend anyone)."""
        cloud = tie_cloud(5)
        structure = build_monolithic(cloud, "custom")
        multi = trace_one(structure, cloud, TraceConfig(k=2))
        assert multi.blended == 5

    def test_packet_parity_on_tied_depths(self):
        cloud = tie_cloud(3)
        structure = build_monolithic(cloud, "custom")
        config = TraceConfig(k=1)
        scalar, packet = render_pair(cloud, structure, config, res=6)
        assert_parity(scalar, packet)
