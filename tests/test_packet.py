"""Packet-engine parity (both structure families) and regressions.

The packet engine's contract (ISSUEs 2 and 4): for every supported
proxy/mode combination — monolithic *and* two-level — it renders the
scalar tracer's image within 1e-9 per channel, and the parity-matched
functional counters — ``n_rays``, ``blended_total``,
``rays_terminated_early`` — agree exactly.  Alongside live the
regression tests for the equal-t hit drop in multiround tracing (tied
depths must survive k-buffer overflow), the flattened-layout round-trip
guarantees, engine="auto" resolution, and fallback observability.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bvh import build_monolithic, build_two_level, flatten
from repro.gaussians import GaussianCloud
from repro.render import GaussianRayTracer, SceneObjects, default_camera_for
from repro.rt import RayTrace, SceneShading, TraceConfig, Tracer
from repro.rt.packet import (
    PacketTracer,
    packet_fallback_count,
    packet_supported,
    reset_packet_fallbacks,
    resolve_engine,
)
from repro.serve import TileScheduler

from tests.conftest import tiny_cloud

#: The image parity bound from the acceptance criteria.
TOL = 1e-9

#: Counters that must agree exactly between engines.
PARITY_COUNTERS = ("n_rays", "n_primary", "n_secondary",
                   "blended_total", "rays_terminated_early")

#: The full structural parity matrix: monolithic proxies plus the
#: paper's two-level structures (sphere and icosphere BLAS).
ALL_PROXIES = ["20-tri", "custom", "tlas+sphere", "tlas+ico"]
TWO_LEVEL = ["tlas+sphere", "tlas+ico"]


@pytest.fixture(scope="module")
def cloud():
    return tiny_cloud(n=120, seed=21)


@pytest.fixture(scope="module")
def opaque_cloud():
    """High-opacity variant so early ray termination actually fires."""
    c = tiny_cloud(n=120, seed=21)
    return GaussianCloud(
        means=c.means, scales=c.scales, rotations=c.rotations,
        opacities=np.clip(c.opacities * 8.0, 0.0, 0.98),
        sh=c.sh, kappa=c.kappa, name="tiny-opaque",
    )


@pytest.fixture(scope="module")
def structures(cloud):
    return {
        "20-tri": build_monolithic(cloud, "20-tri"),
        "custom": build_monolithic(cloud, "custom"),
        "tlas+sphere": build_two_level(cloud, "sphere"),
        "tlas+ico": build_two_level(cloud, "icosphere", 0),
    }


def render_pair(cloud, structure, config, res=10, objects=None):
    camera = default_camera_for(cloud, res, res)
    scalar = GaussianRayTracer(cloud, structure, config).render(
        camera, objects=objects, keep_traces=False)
    packet_renderer = GaussianRayTracer(cloud, structure, config,
                                        engine="packet")
    assert packet_renderer.engine_active == "packet"
    packet = packet_renderer.render(camera, objects=objects, keep_traces=False)
    return scalar, packet


def assert_parity(scalar, packet):
    assert np.abs(scalar.image - packet.image).max() <= TOL
    for name in PARITY_COUNTERS:
        assert getattr(scalar.stats, name) == getattr(packet.stats, name), name


class TestPacketParity:
    @pytest.mark.parametrize("proxy", ALL_PROXIES)
    @pytest.mark.parametrize("mode", ["multiround", "singleround"])
    def test_image_and_counter_parity(self, cloud, structures, proxy, mode):
        scalar, packet = render_pair(
            cloud, structures[proxy], TraceConfig(k=4, mode=mode))
        assert_parity(scalar, packet)

    @pytest.mark.parametrize("proxy", ALL_PROXIES)
    @pytest.mark.parametrize("mode", ["multiround", "singleround"])
    def test_parity_with_scene_objects(self, cloud, structures, proxy, mode):
        """Secondary rays (t_clip-truncated primaries + scattered
        continuations) trace through the packet engine too."""
        objects = SceneObjects.default_for(cloud)
        scalar, packet = render_pair(
            cloud, structures[proxy], TraceConfig(k=4, mode=mode),
            objects=objects)
        assert scalar.stats.n_secondary > 0  # the setup must exercise them
        assert_parity(scalar, packet)

    @pytest.mark.parametrize("proxy", ALL_PROXIES)
    def test_parity_with_t_clip(self, cloud, structures, proxy):
        """An explicit per-ray segment bound cuts the same hits."""
        structure = structures[proxy]
        config = TraceConfig(k=4)
        shading = SceneShading(cloud)
        scalar = Tracer(structure, shading, config)
        packet = PacketTracer(structure, shading, config)
        bundle = default_camera_for(cloud, 8, 8).generate_rays()
        extent = float(np.linalg.norm(cloud.means.std(axis=0)))
        clip = np.linspace(0.5 * extent, 6.0 * extent,
                           bundle.origins.shape[0])
        got = packet.trace_packet(bundle.origins, bundle.directions, clip)
        clipped_someone = False
        for i in range(bundle.origins.shape[0]):
            unclipped = scalar.trace_ray(
                bundle.origins[i], bundle.directions[i], RayTrace())
            out = scalar.trace_ray(
                bundle.origins[i], bundle.directions[i], RayTrace(),
                t_clip=float(clip[i]))
            clipped_someone |= out.blended != unclipped.blended
            assert np.abs(out.color - got.colors[i]).max() <= TOL
            assert out.blended == got.blended[i]
            assert out.terminated_early == bool(got.terminated[i])
        assert clipped_someone  # the bounds must actually cut hits

    @pytest.mark.parametrize("proxy", ["20-tri", "tlas+sphere", "tlas+ico"])
    def test_early_termination_parity(self, opaque_cloud, proxy):
        """Opaque scenes terminate rays early; the cutoff index must
        match the scalar blend loop exactly."""
        from repro.eval.harness import build_structure_for

        label = "tlas+20-tri" if proxy == "tlas+ico" else proxy
        structure = build_structure_for(opaque_cloud, label)
        scalar, packet = render_pair(
            opaque_cloud, structure, TraceConfig(k=4), res=12)
        assert scalar.stats.rays_terminated_early > 0
        assert_parity(scalar, packet)

    @pytest.mark.parametrize("proxy", ["20-tri", "tlas+sphere"])
    def test_max_rounds_cap_parity(self, cloud, structures, proxy):
        """The scalar loop blends at most max_rounds * k hits per ray;
        the packet engine applies the identical cap."""
        config = TraceConfig(k=1, max_rounds=3)
        scalar, packet = render_pair(cloud, structures[proxy], config)
        assert_parity(scalar, packet)

    @pytest.mark.parametrize("proxy", ["20-tri", "tlas+sphere", "tlas+ico"])
    def test_tiled_packet_render_matches_untiled(self, cloud, structures,
                                                 proxy):
        """Rays are independent, so a tiled packet render must be
        bit-identical to the untiled packet render."""
        config = TraceConfig(k=4)
        camera = default_camera_for(cloud, 12, 12)
        whole = GaussianRayTracer(
            cloud, structures[proxy], config, engine="packet").render(
                camera, keep_traces=False)
        tiled = TileScheduler(tile_size=(5, 5), workers=1).render(
            cloud, structures[proxy], config, camera, engine="packet")
        np.testing.assert_array_equal(whole.image, tiled.image)


class TestEngineSelection:
    def test_unknown_engine_rejected(self, cloud, structures):
        with pytest.raises(ValueError, match="engine"):
            GaussianRayTracer(cloud, structures["20-tri"], TraceConfig(),
                              engine="warp")

    @pytest.mark.parametrize("proxy", TWO_LEVEL)
    def test_two_level_runs_on_the_packet_engine(self, cloud, structures,
                                                 proxy):
        """The paper's headline structures no longer fall back (the PR-2
        era silently traced every tlas+* scene on the slow path)."""
        renderer = GaussianRayTracer(cloud, structures[proxy],
                                     TraceConfig(k=4), engine="packet")
        assert renderer.engine_active == "packet"

    def test_checkpointing_falls_back_to_scalar(self, cloud, structures):
        reset_packet_fallbacks()  # re-arm the one-time warning
        config = TraceConfig(k=4, checkpointing=True)
        with pytest.warns(RuntimeWarning, match="falling back"):
            renderer = GaussianRayTracer(cloud, structures["tlas+sphere"],
                                         config, engine="packet")
        assert renderer.engine_active == "scalar"

    def test_record_blended_stays_on_packet(self, cloud, structures):
        """record_blended is packetized: no fallback, and the per-ray
        blend lists match the scalar tracer's (same gids in the same
        blend order; alpha/t to float noise)."""
        reset_packet_fallbacks()
        config = TraceConfig(k=4, record_blended=True)
        renderer = GaussianRayTracer(cloud, structures["20-tri"], config,
                                     engine="packet")
        assert renderer.engine_active == "packet"
        assert packet_fallback_count() == 0

        camera = default_camera_for(cloud, 6, 6)
        bundle = camera.generate_rays()
        result = renderer.packet.trace_packet(bundle.origins,
                                              bundle.directions)
        scalar = Tracer(structures["20-tri"], SceneShading(cloud), config)
        for i in range(len(bundle)):
            outcome = scalar.trace_ray(bundle.origins[i],
                                       bundle.directions[i])
            expected = outcome.blend_records or []
            got = result.blend_records[i]
            assert [g for g, _, _ in got] == [g for g, _, _ in expected]
            for (g1, a1, t1), (g2, a2, t2) in zip(expected, got):
                assert a1 == pytest.approx(a2, abs=1e-12)
                assert t1 == pytest.approx(t2, abs=1e-12)

    def test_packet_tracer_rejects_unsupported(self, cloud, structures):
        config = TraceConfig(k=4, checkpointing=True)
        assert not packet_supported(structures["tlas+sphere"], config)
        with pytest.raises(ValueError, match="packet engine"):
            PacketTracer(structures["tlas+sphere"], SceneShading(cloud),
                         config)

    def test_both_engines_keep_traces(self, cloud, structures):
        """Per-ray fetch traces come from either engine now; the packet
        recorder emits one RayTrace per ray like the scalar loop (deep
        equivalence is covered by tests/test_tracerecord.py)."""
        config = TraceConfig(k=4)
        camera = default_camera_for(cloud, 4, 4)
        scalar = GaussianRayTracer(cloud, structures["20-tri"], config)
        packet = GaussianRayTracer(cloud, structures["20-tri"], config,
                                   engine="packet")
        s = scalar.render(camera, keep_traces=True)
        p = packet.render(camera, keep_traces=True)
        assert len(s.traces) == len(p.traces) == 16
        # Traces stay off (empty) unless asked for, on both engines.
        assert packet.render(camera, keep_traces=False).traces == []


class TestAutoEngine:
    """engine="auto": packet whenever supported, scalar otherwise —
    silently (no fallback counter, no warning)."""

    def test_auto_picks_packet_when_supported(self, cloud, structures):
        for proxy in ALL_PROXIES:
            renderer = GaussianRayTracer(cloud, structures[proxy],
                                         TraceConfig(k=4), engine="auto")
            assert renderer.engine_active == "packet", proxy

    def test_auto_picks_scalar_for_checkpointing(self, cloud, structures):
        config = TraceConfig(k=4, checkpointing=True)
        renderer = GaussianRayTracer(cloud, structures["tlas+sphere"],
                                     config, engine="auto")
        assert renderer.engine_active == "scalar"

    def test_auto_never_counts_a_fallback(self, cloud, structures):
        reset_packet_fallbacks()
        config = TraceConfig(k=4, checkpointing=True)
        GaussianRayTracer(cloud, structures["tlas+sphere"], config,
                          engine="auto")
        assert packet_fallback_count() == 0

    def test_resolve_engine_values(self, structures):
        supported = TraceConfig(k=4)
        unsupported = TraceConfig(k=4, checkpointing=True)
        assert resolve_engine("scalar", structures["tlas+sphere"],
                              supported) == "scalar"
        assert resolve_engine("auto", structures["tlas+sphere"],
                              supported) == "packet"
        assert resolve_engine("auto", structures["tlas+sphere"],
                              unsupported) == "scalar"
        with pytest.raises(ValueError, match="engine"):
            resolve_engine("warp", structures["tlas+sphere"], supported)


class TestFallbackObservability:
    """An explicit engine="packet" degrade is counted and warned about
    (once per reason), instead of being invisible to callers."""

    def test_explicit_packet_degrade_counts_and_warns_once(
            self, cloud, structures):
        reset_packet_fallbacks()
        config = TraceConfig(k=4, checkpointing=True)
        with pytest.warns(RuntimeWarning, match="scalar-engine-only"):
            GaussianRayTracer(cloud, structures["tlas+sphere"], config,
                              engine="packet")
        # Second degrade for the same reason: counted, but not re-warned.
        with warnings_none():
            GaussianRayTracer(cloud, structures["tlas+sphere"], config,
                              engine="packet")
        assert packet_fallback_count() == 2

    def test_server_exposes_fallback_gauge(self, tmp_path):
        from repro.serve import RenderRequest, RenderServer

        reset_packet_fallbacks()
        with RenderServer(workers=1) as server:
            # mode="grtx" checkpoints, so an explicit packet request
            # degrades; the gauge must reflect it.
            request = RenderRequest(scene="train", scale=1 / 4000.0,
                                    width=6, height=6, proxy="tlas+sphere",
                                    mode="grtx", engine="packet")
            assert request.engine_active == "scalar"
            import warnings as _w

            with _w.catch_warnings():
                _w.simplefilter("ignore", RuntimeWarning)
                server.render(request)
            snapshot = server.metrics.snapshot()
            report = server.stats_report()
        assert snapshot["gauge.packet_fallbacks"] >= 1
        assert report["server"]["gauge.packet_fallbacks"] >= 1


class warnings_none:
    """Context manager asserting no warning is emitted inside it."""

    def __enter__(self):
        import warnings as _w

        self._catcher = _w.catch_warnings(record=True)
        self._records = self._catcher.__enter__()
        _w.simplefilter("always")
        return self._records

    def __exit__(self, *exc):
        self._catcher.__exit__(*exc)
        assert self._records == [], [str(r.message) for r in self._records]


class TestFlattenRoundTrip:
    """The flattened layout must round-trip the source structure's byte
    accounting exactly, and its instance table must equal the shading
    tables (the drift guard for the two transform sources)."""

    @pytest.mark.parametrize("proxy", ALL_PROXIES)
    def test_total_bytes_and_height(self, structures, proxy):
        structure = structures[proxy]
        flat = flatten(structure)
        assert flat.total_bytes == structure.total_bytes
        assert flat.height == structure.height
        assert flat.proxy == structure.proxy
        assert flat.n_gaussians == structure.n_gaussians

    @pytest.mark.parametrize("proxy", TWO_LEVEL)
    def test_instance_addresses(self, structures, proxy):
        structure = structures[proxy]
        flat = flatten(structure)
        tlas = structure.tlas
        for leaf in range(tlas.n_leaves):
            for slot in range(int(tlas.leaf_count[leaf])):
                assert (flat.instance_address(leaf, slot)
                        == structure.instance_address(leaf, slot))

    def test_monolithic_has_no_instances(self, structures):
        flat = flatten(structures["20-tri"])
        with pytest.raises(ValueError, match="instance"):
            flat.instance_address(0, 0)

    @pytest.mark.parametrize("proxy", TWO_LEVEL)
    def test_instance_transforms_match_shading(self, cloud, structures,
                                               proxy):
        """Both engines transform rays with the shading tables; the flat
        instance table carries the same values by construction."""
        flat = flatten(structures[proxy])
        shading = SceneShading(cloud)
        np.testing.assert_array_equal(
            flat.inst_w2o_linear, shading.w2o_linear[flat.prim_gid])
        np.testing.assert_array_equal(
            flat.inst_w2o_offset, shading.w2o_offset[flat.prim_gid])

    def test_flatten_is_memoized_and_idempotent(self, structures):
        flat = flatten(structures["tlas+sphere"])
        assert flatten(structures["tlas+sphere"]) is flat
        assert flatten(flat) is flat

    @pytest.mark.parametrize("proxy", TWO_LEVEL)
    def test_flattened_structure_renders_identically(self, cloud,
                                                     structures, proxy):
        """A pre-flattened structure (what ships to pool workers) must
        trace bit-identically to the source structure on both engines."""
        config = TraceConfig(k=4)
        camera = default_camera_for(cloud, 8, 8)
        flat = flatten(structures[proxy])
        for engine in ("scalar", "packet"):
            src = GaussianRayTracer(cloud, structures[proxy], config,
                                    engine=engine).render(
                                        camera, keep_traces=False)
            via_flat = GaussianRayTracer(cloud, flat, config,
                                         engine=engine).render(
                                             camera, keep_traces=False)
            np.testing.assert_array_equal(src.image, via_flat.image)
            assert via_flat.structure_bytes == src.structure_bytes


# ---------------------------------------------------------------------------
# Equal-t regression: a hit whose depth exactly ties the round boundary
# but overflowed the k-buffer must survive into the next round.


def tie_cloud(n_dup: int = 3) -> GaussianCloud:
    """``n_dup`` bit-identical Gaussians: every proxy hit of a ray that
    crosses them reports exactly the same depth."""
    one = np.array([[0.0, 0.0, 0.0]])
    sh = np.zeros((1, 4, 3))
    sh[0, 0] = [0.8, 0.2, 0.1]
    return GaussianCloud(
        means=np.repeat(one, n_dup, axis=0),
        scales=np.full((n_dup, 3), 0.4),
        rotations=np.repeat([[1.0, 0.0, 0.0, 0.0]], n_dup, axis=0),
        opacities=np.full(n_dup, 0.3),
        sh=np.repeat(sh, n_dup, axis=0),
        name="tie",
    )


def trace_one(structure, cloud, config):
    tracer = Tracer(structure, SceneShading(cloud), config)
    # Slightly off-axis so the ray crosses proxy faces in their interior
    # (an exactly-through-a-vertex ray is a degenerate-geometry case,
    # not the tied-depth scenario under test).
    return tracer.trace_ray(
        np.array([0.07, 0.05, -5.0]), np.array([0.0, 0.0, 1.0]), RayTrace())


class TestEqualTDepthRegression:
    @pytest.mark.parametrize("proxy", ["20-tri", "custom"])
    @pytest.mark.parametrize("checkpointing", [False, True])
    def test_tied_hits_survive_kbuffer_overflow(self, proxy, checkpointing):
        """k=1 with three equal-depth Gaussians: each round's boundary t
        ties the overflowed hits, which used to be dropped forever —
        multiround diverged from singleround on tied depths."""
        cloud = tie_cloud(3)
        structure = build_monolithic(cloud, proxy)
        multi = trace_one(structure, cloud,
                          TraceConfig(k=1, checkpointing=checkpointing))
        single = trace_one(structure, cloud,
                           TraceConfig(k=1, mode="singleround"))
        assert single.blended == 3
        assert multi.blended == 3
        np.testing.assert_allclose(multi.color, single.color, atol=1e-12)
        np.testing.assert_allclose(
            multi.transmittance, single.transmittance, atol=1e-12)

    def test_tie_wider_than_kbuffer_advances_frontier(self):
        """Five tied Gaussians through k=2: the boundary cannot advance
        between rounds, so the blended-at-boundary set must accumulate
        (and never double-blend anyone)."""
        cloud = tie_cloud(5)
        structure = build_monolithic(cloud, "custom")
        multi = trace_one(structure, cloud, TraceConfig(k=2))
        assert multi.blended == 5

    @pytest.mark.parametrize("builder", [
        lambda c: build_monolithic(c, "custom"),
        lambda c: build_two_level(c, "sphere"),
        lambda c: build_two_level(c, "icosphere", 0),
    ], ids=["custom", "tlas+sphere", "tlas+ico"])
    def test_packet_parity_on_tied_depths(self, builder):
        cloud = tie_cloud(3)
        structure = builder(cloud)
        config = TraceConfig(k=1)
        scalar, packet = render_pair(cloud, structure, config, res=6)
        assert_parity(scalar, packet)


# ---------------------------------------------------------------------------
# Two-level interval-pruning regression: the TLAS used to bound only the
# ellipsoid, but the icosphere BLAS reports proxy-triangle depths that
# can lie beyond the ellipsoid AABB's exit — so a hit deferred past a
# k-buffer overflow was pruned by the next round's t_min and dropped
# forever (multiround diverged from singleround on dense scenes).


class TestTwoLevelIntervalRegression:
    @pytest.mark.parametrize("subdivisions", [0, 1])
    def test_tlas_boxes_bound_the_proxy_geometry(self, subdivisions):
        """Soundness invariant: every instance's TLAS leaf box contains
        its transformed template mesh, so an interval-pruned leaf can
        never hide a proxy hit inside the live interval."""
        from repro.geometry import unit_icosahedron_circumscribed
        from repro.math3d import quat_to_rotation_matrix
        from tests.conftest import tiny_cloud as make

        cloud = make(n=64, seed=3)
        structure = build_two_level(cloud, "icosphere", subdivisions)
        verts, _ = unit_icosahedron_circumscribed(subdivisions)
        rot = quat_to_rotation_matrix(cloud.rotations)
        radii = cloud.kappa * cloud.scales
        world = np.einsum("nij,nvj->nvi", rot,
                          verts[None, :, :] * radii[:, None, :]
                          ) + cloud.means[:, None, :]
        tlas = structure.tlas
        flat = flatten(structure)
        for leaf in range(tlas.n_leaves):
            for slot, gid in enumerate(tlas.leaf_prims(leaf)):
                node, box_slot = _leaf_slot_of(tlas, leaf)
                lo = tlas.child_lo[node, box_slot]
                hi = tlas.child_hi[node, box_slot]
                assert np.all(world[gid].min(axis=0) >= lo - 1e-9)
                assert np.all(world[gid].max(axis=0) <= hi + 1e-9)
        assert flat.two_level

    def test_multiround_matches_singleround_on_dense_scene(self):
        """The end-to-end shape of the bug: on a dense scene the scalar
        multiround render must blend exactly what singleround does."""
        from repro.gaussians import make_workload
        from repro.render import default_camera_for

        cloud = make_workload("train", scale=1 / 2000.0)
        structure = build_two_level(cloud, "icosphere", 0)
        shading = SceneShading(cloud)
        multi = Tracer(structure, shading, TraceConfig(k=4))
        single = Tracer(structure, shading,
                        TraceConfig(k=4, mode="singleround"))
        bundle = default_camera_for(cloud, 8, 8).generate_rays()
        for i in range(bundle.origins.shape[0]):
            m = multi.trace_ray(bundle.origins[i], bundle.directions[i],
                                RayTrace())
            g = single.trace_ray(bundle.origins[i], bundle.directions[i],
                                 RayTrace())
            assert m.blended == g.blended
            np.testing.assert_allclose(m.color, g.color, atol=1e-12)


def _leaf_slot_of(bvh, leaf_ref: int) -> tuple[int, int]:
    """Locate the (node, slot) whose child is the given leaf record."""
    from repro.bvh import KIND_LEAF

    hits = np.argwhere((bvh.child_kind == KIND_LEAF)
                       & (bvh.child_ref == leaf_ref))
    assert hits.shape[0] == 1
    return int(hits[0][0]), int(hits[0][1])
