"""Tests for warp divergence analysis, structure serialization, and paths."""

import numpy as np
import pytest

from repro import (
    GaussianRayTracer,
    TraceConfig,
    build_monolithic,
    build_two_level,
    default_camera_for,
    make_workload,
)
from repro.bvh import load_structure, save_structure
from repro.hwsim import analyze_divergence
from repro.render import dolly_path, lerp_cameras, orbit_path
from repro.rt.recorder import FETCH_INTERNAL, RayTrace


@pytest.fixture(scope="module")
def scene():
    cloud = make_workload("bonsai", scale=1 / 1000)
    return cloud, build_two_level(cloud, blas_kind="sphere")


@pytest.fixture(scope="module")
def render(scene):
    cloud, structure = scene
    renderer = GaussianRayTracer(cloud, structure, TraceConfig(k=4))
    return renderer.render(default_camera_for(cloud, 10, 10))


class TestWarpDivergence:
    def test_report_fields_bounded(self, render):
        report = analyze_divergence(render.traces)
        assert report.n_warps >= 1
        assert 0.0 < report.mean_active_fraction <= 1.0
        assert report.straggler_ratio >= 1.0
        assert report.mean_round_spread >= 0.0
        assert 0.0 <= report.idle_lane_fraction < 1.0

    def test_uniform_traces_have_no_divergence(self):
        traces = []
        for _ in range(32):
            trace = RayTrace()
            rt = trace.begin_round()
            rt.fetch(0, 208, FETCH_INTERNAL)
            rt.fetch(208, 208, FETCH_INTERNAL)
            traces.append(trace)
        report = analyze_divergence(traces)
        assert report.mean_active_fraction == 1.0
        assert report.straggler_ratio == pytest.approx(1.0)
        assert report.idle_lane_fraction == 0.0

    def test_one_straggler_detected(self):
        traces = []
        for i in range(4):
            trace = RayTrace()
            rt = trace.begin_round()
            rt.fetch(0, 208, FETCH_INTERNAL)
            if i == 0:  # the straggler traces a second round
                rt2 = trace.begin_round()
                rt2.fetch(208, 208, FETCH_INTERNAL)
            traces.append(trace)
        report = analyze_divergence(traces, warp_size=4)
        assert report.mean_round_spread == 1.0
        assert report.idle_lane_fraction == pytest.approx(3 / 8)

    def test_empty_traces(self):
        report = analyze_divergence([])
        assert report.n_warps == 0
        assert report.mean_active_fraction == 0.0

    def test_rejects_bad_warp_size(self, render):
        with pytest.raises(ValueError):
            analyze_divergence(render.traces, warp_size=0)

    def test_smaller_k_more_rounds(self, scene):
        cloud, structure = scene
        camera = default_camera_for(cloud, 8, 8)
        small = GaussianRayTracer(cloud, structure, TraceConfig(k=2)).render(camera)
        large = GaussianRayTracer(cloud, structure, TraceConfig(k=32)).render(camera)
        rep_small = analyze_divergence(small.traces)
        rep_large = analyze_divergence(large.traces)
        # Figure 18's driver: small k multiplies rounds and idle lanes.
        assert rep_small.n_rounds_total > rep_large.n_rounds_total

    def test_as_row_keys(self, render):
        row = analyze_divergence(render.traces).as_row()
        assert set(row) == {"warps", "active_frac", "straggler",
                            "round_spread", "idle_frac"}


class TestStructureSerialization:
    @pytest.mark.parametrize("proxy", ["20-tri", "custom"])
    def test_monolithic_round_trip(self, tmp_path, proxy):
        cloud = make_workload("room", scale=1 / 1500)
        structure = build_monolithic(cloud, proxy)
        path = tmp_path / "mono.npz"
        save_structure(structure, path)
        loaded = load_structure(path)
        assert loaded.proxy == structure.proxy
        assert loaded.total_bytes == structure.total_bytes
        assert np.array_equal(loaded.bvh.node_addr, structure.bvh.node_addr)
        loaded.bvh.validate()

    @pytest.mark.parametrize("blas_kind,subdiv", [("sphere", 0), ("icosphere", 0)])
    def test_two_level_round_trip(self, tmp_path, blas_kind, subdiv):
        cloud = make_workload("room", scale=1 / 1500)
        structure = build_two_level(cloud, blas_kind, subdiv)
        path = tmp_path / "two.npz"
        save_structure(structure, path)
        loaded = load_structure(path)
        assert loaded.proxy == structure.proxy
        assert loaded.total_bytes == structure.total_bytes
        assert loaded.blas.root_address == structure.blas.root_address

    def test_reloaded_structure_renders_identically(self, tmp_path, scene):
        cloud, structure = scene
        path = tmp_path / "s.npz"
        save_structure(structure, path)
        loaded = load_structure(path)
        camera = default_camera_for(cloud, 6, 6)
        a = GaussianRayTracer(cloud, structure, TraceConfig(k=8)).render(
            camera, keep_traces=False).image
        b = GaussianRayTracer(cloud, loaded, TraceConfig(k=8)).render(
            camera, keep_traces=False).image
        assert np.array_equal(a, b)

    def test_rejects_unknown_type(self, tmp_path):
        with pytest.raises(TypeError):
            save_structure(object(), tmp_path / "x.npz")

    def test_rejects_bad_version(self, tmp_path, scene):
        _cloud, structure = scene
        path = tmp_path / "v.npz"
        save_structure(structure, path)
        import numpy as np_mod

        with np_mod.load(path) as data:
            contents = {k: data[k] for k in data.files}
        contents["format_version"] = np_mod.int64(999)
        np_mod.savez_compressed(path, **contents)
        with pytest.raises(ValueError, match="version"):
            load_structure(path)


class TestCameraPaths:
    def _base(self):
        cloud = make_workload("room", scale=1 / 1500)
        return cloud, default_camera_for(cloud, 8, 8)

    def test_orbit_preserves_radius(self):
        cloud, base = self._base()
        center = cloud.means.mean(axis=0)
        path = orbit_path(base, center, 5, total_angle=0.5)
        radii = [np.linalg.norm(cam.position - center) for cam in path]
        assert np.allclose(radii, radii[0])

    def test_orbit_first_frame_is_base(self):
        cloud, base = self._base()
        path = orbit_path(base, cloud.means.mean(axis=0), 4, 0.3)
        assert np.allclose(path[0].position, base.position)

    def test_orbit_covers_total_angle(self):
        cloud, base = self._base()
        center = cloud.means.mean(axis=0)
        path = orbit_path(base, center, 3, total_angle=np.pi / 2)
        v0 = path[0].position - center
        v2 = path[-1].position - center
        v0[2] = v2[2] = 0.0  # z-axis orbit: compare in-plane components
        cos_angle = (v0 @ v2) / (np.linalg.norm(v0) * np.linalg.norm(v2))
        assert np.arccos(np.clip(cos_angle, -1, 1)) == pytest.approx(np.pi / 2, abs=1e-6)

    def test_orbit_axis_choices(self):
        cloud, base = self._base()
        center = cloud.means.mean(axis=0)
        for axis in ("x", "y", "z"):
            path = orbit_path(base, center, 3, 0.2, axis=axis)
            assert len(path) == 3
        with pytest.raises(ValueError):
            orbit_path(base, center, 3, 0.2, axis="w")

    def test_dolly_moves_position_and_target(self):
        _cloud, base = self._base()
        offset = np.array([1.0, 2.0, 0.0])
        path = dolly_path(base, offset, 3)
        assert np.allclose(path[-1].position, base.position + offset)
        assert np.allclose(path[-1].look_at, base.look_at + offset)

    def test_lerp_endpoints(self):
        _cloud, a = self._base()
        from repro.render import PinholeCamera

        b = PinholeCamera(a.position + 1.0, a.look_at, a.up, 8, 8, a.fov_y * 0.8)
        path = lerp_cameras(a, b, 5)
        assert np.allclose(path[0].position, a.position)
        assert np.allclose(path[-1].position, b.position)
        assert path[-1].fov_y == pytest.approx(b.fov_y)

    def test_lerp_rejects_resolution_mismatch(self):
        _cloud, a = self._base()
        b = a.with_resolution(16, 16)
        with pytest.raises(ValueError):
            lerp_cameras(a, b, 3)

    def test_paths_reject_zero_frames(self):
        cloud, base = self._base()
        with pytest.raises(ValueError):
            orbit_path(base, cloud.means.mean(axis=0), 0, 0.1)
        with pytest.raises(ValueError):
            dolly_path(base, np.ones(3), 0)
