"""Tests for the programmable ray-tracing pipeline (Figure 2)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.bvh import build_monolithic, build_two_level
from repro.gaussians import GaussianCloud
from repro.render import PinholeCamera
from repro.rt import SceneShading
from repro.rt.pipeline import (
    ACCEPT,
    IGNORE,
    TERMINATE,
    DepthPayload,
    Hit,
    RayTracingPipeline,
    ShadowPayload,
    depth_pipeline,
    shadow_pipeline,
)

from tests.conftest import tiny_cloud


def axis_cloud() -> GaussianCloud:
    """Three solid Gaussians along +x at distances 3, 6, 9."""
    means = np.array([[3.0, 0, 0], [6.0, 0, 0], [9.0, 0, 0]])
    return GaussianCloud(
        means=means,
        scales=np.full((3, 3), 0.4),
        rotations=np.tile([1.0, 0, 0, 0], (3, 1)),
        opacities=np.array([0.6, 0.7, 0.8]),
        sh=np.full((3, 1, 3), 0.5),
    )


@pytest.fixture(scope="module")
def setup():
    cloud = axis_cloud()
    structure = build_two_level(cloud, "sphere")
    return cloud, structure, SceneShading(cloud)


ORIGIN = np.array([0.0, 0.0, 0.0])
DIR = np.array([1.0, 0.0, 0.0])


class TestTraceRay:
    def test_closest_hit_gets_nearest(self, setup):
        _, structure, shading = setup
        seen = {}

        def closest(hit, payload, ctx):
            seen["hit"] = hit

        pipe = RayTracingPipeline(structure, shading, closest_hit=closest)
        pipe.trace_ray(ORIGIN, DIR, payload={})
        assert seen["hit"].gaussian_id == 0
        assert seen["hit"].t < 3.0  # entry point before the mean

    def test_any_hit_sees_all_candidates(self, setup):
        _, structure, shading = setup
        visited = []

        def any_hit(hit, payload):
            visited.append(hit.gaussian_id)
            return IGNORE

        missed = []
        pipe = RayTracingPipeline(structure, shading, any_hit=any_hit,
                                  miss=lambda p: missed.append(True))
        pipe.trace_ray(ORIGIN, DIR, payload=None)
        assert sorted(visited) == [0, 1, 2]
        assert missed == [True]  # all hits ignored -> miss shader

    def test_terminate_stops_traversal(self, setup):
        _, structure, shading = setup
        visited = []

        def any_hit(hit, payload):
            visited.append(hit.gaussian_id)
            return TERMINATE

        committed = []
        pipe = RayTracingPipeline(structure, shading, any_hit=any_hit,
                                  closest_hit=lambda h, p, c: committed.append(h))
        pipe.trace_ray(ORIGIN, DIR, payload=None)
        assert len(visited) == 1
        assert committed[0].gaussian_id == visited[0]

    def test_miss_shader_on_empty_ray(self, setup):
        _, structure, shading = setup
        missed = []
        pipe = RayTracingPipeline(structure, shading,
                                  miss=lambda p: missed.append(True))
        pipe.trace_ray(ORIGIN, np.array([0.0, 0.0, 1.0]), payload=None)
        assert missed == [True]

    def test_t_interval_respected(self, setup):
        _, structure, shading = setup
        visited = []

        def any_hit(hit, payload):
            visited.append(hit.gaussian_id)
            return ACCEPT

        pipe = RayTracingPipeline(structure, shading, any_hit=any_hit)
        # Ellipsoid entry points are at mean - kappa*sigma = t-1.2, so the
        # window (4, 7] admits only the middle Gaussian (entry 4.8).
        pipe.trace_ray(ORIGIN, DIR, payload=None, t_min=4.0, t_max=7.0)
        assert visited == [1]

    def test_secondary_rays_via_context(self, setup):
        """A closest-hit shader casting a secondary ray (recursion)."""
        _, structure, shading = setup
        depths = []

        def closest(hit, payload, ctx):
            depths.append(ctx.depth)
            if ctx.depth == 0:
                ctx.trace(hit.position(ORIGIN, DIR) + np.array([0.5, 0, 0]),
                          DIR, payload)

        pipe = RayTracingPipeline(structure, shading, closest_hit=closest)
        pipe.trace_ray(ORIGIN, DIR, payload=None)
        assert depths == [0, 1]

    def test_recursion_bounded(self, setup):
        _, structure, shading = setup
        count = [0]

        def closest(hit, payload, ctx):
            count[0] += 1
            ctx.trace(ORIGIN, DIR, payload)

        pipe = RayTracingPipeline(structure, shading, closest_hit=closest,
                                  max_depth=3)
        pipe.trace_ray(ORIGIN, DIR, payload=None)
        assert count[0] == 4  # depths 0..3

    def test_monolithic_triangle_structure_supported(self):
        cloud = axis_cloud()
        structure = build_monolithic(cloud, "20-tri")
        shading = SceneShading(cloud)
        visited = []
        pipe = RayTracingPipeline(structure, shading,
                                  any_hit=lambda h, p: visited.append(h.gaussian_id) or IGNORE)
        pipe.trace_ray(ORIGIN, DIR, payload=None)
        assert sorted(visited) == [0, 1, 2]

    def test_custom_structure_supported(self):
        cloud = axis_cloud()
        structure = build_monolithic(cloud, "custom")
        shading = SceneShading(cloud)
        visited = []
        pipe = RayTracingPipeline(structure, shading,
                                  any_hit=lambda h, p: visited.append(h.gaussian_id) or IGNORE)
        pipe.trace_ray(ORIGIN, DIR, payload=None)
        assert sorted(visited) == [0, 1, 2]


class TestPrebuiltPipelines:
    def test_depth_pipeline_returns_first_solid(self, setup):
        _, structure, shading = setup
        pipe = depth_pipeline(structure, shading, alpha_threshold=0.3)
        payload = pipe.trace_ray(ORIGIN, DIR, DepthPayload())
        assert payload.hit
        assert payload.depth == pytest.approx(3.0, abs=1.3)

    def test_depth_pipeline_ignores_translucent(self, setup):
        """With a threshold above every alpha, nothing commits."""
        _, structure, shading = setup
        pipe = depth_pipeline(structure, shading, alpha_threshold=0.95)
        payload = pipe.trace_ray(ORIGIN, DIR, DepthPayload())
        assert not payload.hit

    def test_shadow_pipeline_attenuates(self, setup):
        _, structure, shading = setup
        pipe = shadow_pipeline(structure, shading)
        payload = pipe.trace_ray(ORIGIN, DIR, ShadowPayload())
        assert payload.transmittance < 0.2

    def test_shadow_pipeline_clear_path(self, setup):
        _, structure, shading = setup
        pipe = shadow_pipeline(structure, shading)
        payload = pipe.trace_ray(ORIGIN, np.array([0.0, 1.0, 0.0]), ShadowPayload())
        assert payload.transmittance == 1.0

    def test_render_depth_map(self, setup):
        cloud, structure, shading = setup
        pipe = depth_pipeline(structure, shading, alpha_threshold=0.3)
        camera = PinholeCamera(
            position=np.array([-4.0, 0.0, 0.0]),
            look_at=np.array([3.0, 0.0, 0.0]),
            up=np.array([0.0, 0.0, 1.0]),
            width=7, height=7, fov_y=np.deg2rad(40),
        )
        image = pipe.render(
            camera,
            make_payload=DepthPayload,
            payload_color=lambda p: np.full(3, p.depth if p.hit else 0.0),
        )
        center = image[3, 3, 0]
        assert center == pytest.approx(7.0 - 1.2, abs=1.5)
        assert image[0, 0, 0] == 0.0  # corner ray misses
