"""The cross-engine parity matrix: every structure x mode x engine.

One parameterized table drives all three engines (scalar, packet,
wavefront) over the full structural matrix — both monolithic proxies,
both homogeneous two-level structures, and the heterogeneous
multi-BLAS TLAS — in both trace modes.  The standing contract checked
here (ISSUE 7):

* every batch engine matches the scalar golden within 1e-9 per channel;
* the parity-matched functional counters (``n_rays``, ``n_primary``,
  ``n_secondary``, ``blended_total``, ``rays_terminated_early``) agree
  exactly;
* the wavefront engine is additionally *bit-identical* to the packet
  engine (same candidate multiset, same order-free reductions);
* ``resolve_engine`` rejects unknown engines loudly and sizes "auto"
  by the ray count.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bvh import build_monolithic, build_two_level
from repro.bvh.two_level import build_two_level_hetero
from repro.render import GaussianRayTracer, default_camera_for
from repro.rt import (
    WAVEFRONT_MIN_RAYS,
    PacketTracer,
    SceneShading,
    TraceConfig,
    WavefrontTracer,
)
from repro.rt.packet import resolve_engine

from tests.conftest import tiny_cloud

#: The image parity bound from the acceptance criteria.
TOL = 1e-9

#: Counters that must agree exactly across all three engines.
PARITY_COUNTERS = ("n_rays", "n_primary", "n_secondary",
                   "blended_total", "rays_terminated_early")

#: Every structure the batch engines support, heterogeneous TLAS
#: included — the wavefront engine consumes the per-instance
#: multi-BLAS tables from day one.
ALL_STRUCTURES = ["20-tri", "custom", "tlas+sphere", "tlas+ico", "hetero"]

MODES = ["multiround", "singleround"]

ENGINES = ["scalar", "packet", "wavefront"]


@pytest.fixture(scope="module")
def cloud():
    return tiny_cloud(n=110, seed=33)


@pytest.fixture(scope="module")
def structures(cloud):
    return {
        "20-tri": build_monolithic(cloud, "20-tri"),
        "custom": build_monolithic(cloud, "custom"),
        "tlas+sphere": build_two_level(cloud, "sphere"),
        "tlas+ico": build_two_level(cloud, "icosphere", 0),
        "hetero": build_two_level_hetero(
            cloud,
            blas_specs=[("sphere", 0), ("icosphere", 0)],
            gaussian_blas=np.arange(len(cloud)) % 2,
        ),
    }


@pytest.fixture(scope="module")
def goldens(cloud, structures):
    """Scalar renders, computed once per (structure, mode) cell."""
    camera = default_camera_for(cloud, 10, 10)
    out = {}
    for name, structure in structures.items():
        for mode in MODES:
            config = TraceConfig(k=4, mode=mode)
            out[name, mode] = GaussianRayTracer(
                cloud, structure, config).render(camera, keep_traces=False)
    return out


class TestEngineMatrix:
    @pytest.mark.parametrize("mode", MODES)
    @pytest.mark.parametrize("structure_name", ALL_STRUCTURES)
    @pytest.mark.parametrize("engine", ["packet", "wavefront"])
    def test_engine_matches_scalar_golden(self, cloud, structures, goldens,
                                          structure_name, mode, engine):
        config = TraceConfig(k=4, mode=mode)
        camera = default_camera_for(cloud, 10, 10)
        renderer = GaussianRayTracer(cloud, structures[structure_name],
                                     config, engine=engine)
        assert renderer.engine_active == engine
        result = renderer.render(camera, keep_traces=False)
        golden = goldens[structure_name, mode]
        assert np.abs(golden.image - result.image).max() <= TOL
        for name in PARITY_COUNTERS:
            assert getattr(golden.stats, name) == getattr(
                result.stats, name), (name, engine)

    @pytest.mark.parametrize("mode", MODES)
    @pytest.mark.parametrize("structure_name", ALL_STRUCTURES)
    def test_wavefront_bit_identical_to_packet(self, cloud, structures,
                                               structure_name, mode):
        """Stronger than the 1e-9 bound: identical visit sets plus
        order-free reductions make the two batch engines bit-equal."""
        config = TraceConfig(k=4, mode=mode)
        camera = default_camera_for(cloud, 10, 10)
        bundle = camera.generate_rays()
        shading = SceneShading(cloud)
        structure = structures[structure_name]
        packet = PacketTracer(structure, shading, config).trace_packet(
            bundle.origins, bundle.directions)
        wavefront = WavefrontTracer(structure, shading, config).trace_packet(
            bundle.origins, bundle.directions)
        assert np.array_equal(packet.colors, wavefront.colors)
        assert np.array_equal(packet.transmittance, wavefront.transmittance)
        assert np.array_equal(packet.blended, wavefront.blended)
        assert np.array_equal(packet.terminated, wavefront.terminated)
        assert packet.anyhit_calls == wavefront.anyhit_calls
        assert packet.false_positives == wavefront.false_positives

    def test_wavefront_chunking_is_invisible(self, cloud, structures):
        """Odd ray-chunk sizes must not change a single bit."""
        config = TraceConfig(k=4)
        camera = default_camera_for(cloud, 10, 10)
        bundle = camera.generate_rays()
        shading = SceneShading(cloud)
        structure = structures["tlas+sphere"]
        whole = WavefrontTracer(structure, shading, config).trace_packet(
            bundle.origins, bundle.directions)
        chunked_tracer = WavefrontTracer(structure, shading, config,
                                         ray_chunk=17)
        chunked = chunked_tracer.trace_packet(bundle.origins,
                                              bundle.directions)
        assert np.array_equal(whole.colors, chunked.colors)
        assert np.array_equal(whole.blended, chunked.blended)


class TestResolveEngineHardening:
    def test_unknown_engine_is_rejected_loudly(self, structures):
        config = TraceConfig(k=4)
        with pytest.raises(ValueError, match="unknown engine 'wavefont'"):
            resolve_engine("wavefont", structures["tlas+sphere"], config)

    def test_rejection_names_the_valid_engines(self, structures):
        config = TraceConfig(k=4)
        with pytest.raises(ValueError, match="scalar, packet, wavefront"):
            resolve_engine("gpu", structures["tlas+sphere"], config)

    def test_auto_sizes_by_ray_count(self, structures):
        config = TraceConfig(k=4)
        structure = structures["tlas+sphere"]
        assert resolve_engine("auto", structure, config,
                              n_rays=WAVEFRONT_MIN_RAYS) == "wavefront"
        assert resolve_engine("auto", structure, config,
                              n_rays=WAVEFRONT_MIN_RAYS - 1) == "packet"
        # No ray count: conservative, frame size unknown.
        assert resolve_engine("auto", structure, config) == "packet"

    def test_auto_degrades_to_scalar_when_unsupported(self, structures):
        config = TraceConfig(k=4, checkpointing=True)
        assert resolve_engine("auto", structures["tlas+sphere"], config,
                              n_rays=WAVEFRONT_MIN_RAYS) == "scalar"

    def test_explicit_wavefront_respects_small_batches(self, cloud,
                                                       structures):
        """engine="wavefront" is explicit — no silent size-based demotion."""
        renderer = GaussianRayTracer(cloud, structures["tlas+sphere"],
                                     TraceConfig(k=4), engine="wavefront",
                                     n_rays=4)
        assert renderer.engine_active == "wavefront"


class TestWavefrontDeployment:
    def test_tiled_wavefront_equals_tiled_packet(self, cloud, structures):
        """The scheduler's frame-whole wavefront path re-splits into the
        same tile grid and assembles the identical image."""
        from repro.serve import TileScheduler

        camera = default_camera_for(cloud, 12, 12)
        scheduler = TileScheduler(tile_size=(8, 8))
        config = TraceConfig(k=4)
        packet = scheduler.render(cloud, structures["tlas+sphere"], config,
                                  camera, engine="packet")
        wavefront = scheduler.render(cloud, structures["tlas+sphere"], config,
                                     camera, engine="wavefront")
        assert np.array_equal(packet.image, wavefront.image)
        for name in PARITY_COUNTERS:
            assert getattr(packet.stats, name) == getattr(
                wavefront.stats, name), name
