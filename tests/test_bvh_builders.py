"""Tests for Morton codes, the LBVH strategy, refit, and quality metrics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.bvh import (
    BuildParams,
    build_bvh,
    build_two_level,
    measure_drift,
    morton_codes,
    radix_split,
    refit_bvh,
    sah_cost,
    tree_quality,
)
from repro.bvh.morton import MORTON_BITS, common_prefix_length, expand_bits
from repro.bvh.quality import leaf_size_histogram, mean_sibling_overlap
from repro.gaussians import make_workload


def _random_boxes(n, seed=0, extent=10.0):
    rng = np.random.default_rng(seed)
    centers = rng.uniform(-extent, extent, (n, 3))
    half = rng.uniform(0.01, 0.4, (n, 1))
    return centers - half, centers + half


class TestMortonCodes:
    def test_expand_bits_interleaves(self):
        # 0b1111111111 expanded: every third bit set over 28 bits.
        out = int(expand_bits(np.array([0x3FF], dtype=np.uint64))[0])
        assert out == 0x09249249

    def test_codes_fit_in_30_bits(self):
        lo, hi = _random_boxes(500)
        codes = morton_codes(0.5 * (lo + hi))
        assert int(codes.max()) < (1 << (3 * MORTON_BITS))

    def test_corner_points_map_to_extremes(self):
        pts = np.array([[0.0, 0.0, 0.0], [1.0, 1.0, 1.0]])
        codes = morton_codes(pts, lo=np.zeros(3), hi=np.ones(3))
        assert int(codes[0]) == 0
        assert int(codes[1]) == (1 << (3 * MORTON_BITS)) - 1

    def test_spatial_locality(self):
        # Points close in space get closer codes than distant points.
        pts = np.array([[0.1, 0.1, 0.1], [0.11, 0.1, 0.1], [0.9, 0.9, 0.9]])
        codes = morton_codes(pts, lo=np.zeros(3), hi=np.ones(3))
        assert abs(int(codes[0]) - int(codes[1])) < abs(int(codes[0]) - int(codes[2]))

    def test_degenerate_axis_is_tolerated(self):
        pts = np.array([[0.0, 5.0, 1.0], [1.0, 5.0, 0.0]])  # y extent zero
        codes = morton_codes(pts)
        assert codes.shape == (2,)

    def test_rejects_wrong_shape(self):
        with pytest.raises(ValueError):
            morton_codes(np.zeros((4, 2)))

    @given(hnp.arrays(np.float64, (20, 3),
                      elements=st.floats(-100, 100, allow_nan=False)))
    @settings(max_examples=30, deadline=None)
    def test_codes_deterministic(self, pts):
        a = morton_codes(pts)
        b = morton_codes(pts)
        assert np.array_equal(a, b)


class TestRadixSplit:
    def test_splits_at_highest_differing_bit(self):
        codes = np.array([0b000, 0b001, 0b100, 0b101], dtype=np.uint64)
        assert radix_split(codes, 0, 4) == 2

    def test_identical_codes_return_none(self):
        codes = np.array([7, 7, 7], dtype=np.uint64)
        assert radix_split(codes, 0, 3) is None

    def test_split_never_degenerate(self):
        rng = np.random.default_rng(3)
        codes = np.sort(rng.integers(0, 1 << 30, 200).astype(np.uint64))
        pos = radix_split(codes, 0, len(codes))
        assert 0 < pos < len(codes)

    def test_subrange_split(self):
        codes = np.array([1, 2, 3, 8, 9, 10], dtype=np.uint64)
        pos = radix_split(codes, 1, 5)  # codes 2,3,8,9 -> split before 8
        assert pos == 3

    def test_common_prefix_length(self):
        assert common_prefix_length(0, 0) == 30
        assert common_prefix_length(0b100, 0b101, bits=3) == 2
        assert common_prefix_length(0b100, 0b000, bits=3) == 0


class TestLbvhStrategy:
    def test_lbvh_tree_is_valid(self):
        lo, hi = _random_boxes(3000, seed=1)
        bvh = build_bvh(lo, hi, 48, BuildParams(strategy="lbvh"))
        bvh.validate()

    def test_lbvh_order_is_morton_sorted(self):
        lo, hi = _random_boxes(300, seed=2)
        bvh = build_bvh(lo, hi, 48, BuildParams(strategy="lbvh"))
        codes = morton_codes(0.5 * (lo + hi))
        sorted_codes = codes[bvh.prim_order]
        assert np.all(np.diff(sorted_codes.astype(np.int64)) >= 0)

    def test_sah_beats_lbvh_beats_nothing(self):
        # On clustered scenes SAH should produce a cheaper tree than LBVH.
        cloud = make_workload("bonsai", scale=1 / 1000)
        from repro.gaussians import world_aabbs

        lo, hi = world_aabbs(cloud)
        sah = build_bvh(lo, hi, 48, BuildParams(strategy="sah"))
        lbvh = build_bvh(lo, hi, 48, BuildParams(strategy="lbvh"))
        assert sah_cost(sah) <= sah_cost(lbvh) * 1.1

    def test_all_strategies_render_identically(self):
        cloud = make_workload("room", scale=1 / 1500)
        from repro.render import GaussianRayTracer, default_camera_for
        from repro.rt import TraceConfig

        camera = default_camera_for(cloud, 6, 6)
        images = []
        for strategy in ("sah", "median", "lbvh"):
            structure = build_two_level(
                cloud, "sphere", params=BuildParams(strategy=strategy)
            )
            result = GaussianRayTracer(cloud, structure, TraceConfig(k=8)).render(
                camera, keep_traces=False
            )
            images.append(result.image)
        assert np.allclose(images[0], images[1], atol=1e-9)
        assert np.allclose(images[0], images[2], atol=1e-9)

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ValueError):
            BuildParams(strategy="hlbvh")


class TestRefit:
    def test_refit_preserves_validity(self):
        lo, hi = _random_boxes(1000, seed=4)
        bvh = build_bvh(lo, hi, 48, BuildParams())
        rng = np.random.default_rng(5)
        shift = rng.normal(0, 0.3, lo.shape)
        refit_bvh(bvh, lo + shift, hi + shift)
        bvh.validate()

    def test_refit_boxes_contain_primitives(self):
        lo, hi = _random_boxes(500, seed=6)
        bvh = build_bvh(lo, hi, 48, BuildParams())
        lo2, hi2 = _random_boxes(500, seed=7, extent=12.0)
        refit_bvh(bvh, lo2, hi2)
        root_lo, root_hi = bvh.root_box()
        assert np.all(root_lo <= lo2.min(axis=0) + 1e-9)
        assert np.all(root_hi >= hi2.max(axis=0) - 1e-9)

    def test_refit_identity_is_noop(self):
        lo, hi = _random_boxes(300, seed=8)
        bvh = build_bvh(lo, hi, 48, BuildParams())
        before_lo = bvh.child_lo.copy()
        refit_bvh(bvh, lo, hi)
        assert np.allclose(bvh.child_lo, before_lo)

    def test_refit_rejects_wrong_count(self):
        lo, hi = _random_boxes(100)
        bvh = build_bvh(lo, hi, 48, BuildParams())
        with pytest.raises(ValueError):
            refit_bvh(bvh, lo[:50], hi[:50])

    def test_drift_grows_with_motion(self):
        lo, hi = _random_boxes(800, seed=9)
        bvh_small = build_bvh(lo, hi, 48, BuildParams())
        bvh_large = build_bvh(lo, hi, 48, BuildParams())
        rng = np.random.default_rng(10)
        small = rng.normal(0, 0.05, lo.shape)
        large = rng.normal(0, 2.0, lo.shape)
        refit_bvh(bvh_small, lo + small, hi + small)
        refit_bvh(bvh_large, lo + large, hi + large)
        rebuild_small = build_bvh(lo + small, hi + small, 48, BuildParams())
        rebuild_large = build_bvh(lo + large, hi + large, 48, BuildParams())
        drift_small = measure_drift(bvh_small, rebuild_small)
        drift_large = measure_drift(bvh_large, rebuild_large)
        assert drift_small.sah_ratio < drift_large.sah_ratio
        assert not drift_small.should_rebuild
        assert drift_large.should_rebuild

    @given(st.integers(0, 2**31 - 1))
    @settings(max_examples=10, deadline=None)
    def test_refit_containment_property(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(5, 60))
        centers = rng.uniform(-3, 3, (n, 3))
        half = rng.uniform(0.01, 0.5, (n, 1))
        bvh = build_bvh(centers - half, centers + half, 48, BuildParams(width=4))
        moved = centers + rng.normal(0, 1.0, centers.shape)
        refit_bvh(bvh, moved - half, moved + half)
        bvh.validate()  # parent-contains-child is part of validate()


class TestQualityMetrics:
    def test_sah_cost_positive(self):
        lo, hi = _random_boxes(200)
        bvh = build_bvh(lo, hi, 48, BuildParams())
        assert sah_cost(bvh) > 0.0

    def test_overlap_bounded(self):
        lo, hi = _random_boxes(400, seed=11)
        bvh = build_bvh(lo, hi, 48, BuildParams())
        overlap = mean_sibling_overlap(bvh)
        assert 0.0 <= overlap <= 1.0 + 1e-9

    def test_disjoint_grid_has_low_overlap(self):
        # A perfect grid of disjoint boxes: siblings barely overlap.
        xs = np.arange(8, dtype=np.float64)
        grid = np.stack(np.meshgrid(xs, xs, xs), axis=-1).reshape(-1, 3)
        lo = grid
        hi = grid + 0.4
        bvh = build_bvh(lo, hi, 48, BuildParams())
        assert mean_sibling_overlap(bvh) < 0.1

    def test_leaf_histogram_sums_to_leaf_count(self):
        lo, hi = _random_boxes(333, seed=12)
        bvh = build_bvh(lo, hi, 48, BuildParams(leaf_size=3))
        hist = leaf_size_histogram(bvh)
        assert sum(hist.values()) == bvh.n_leaves
        assert max(hist) <= 3

    def test_tree_quality_row(self):
        lo, hi = _random_boxes(100)
        q = tree_quality(build_bvh(lo, hi, 48, BuildParams()))
        row = q.as_row()
        assert set(row) == {"sah_cost", "overlap", "nodes", "leaves", "height", "mean_leaf"}
        assert q.max_leaf_size >= 1
