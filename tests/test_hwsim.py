"""Tests for the GPU timing model: caches, replay, hardware cost."""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bvh import build_monolithic, build_two_level
from repro.hwsim import (
    CheckpointHardware,
    GpuConfig,
    SetAssociativeCache,
    checkpoint_hardware_cost,
    replay,
)
from repro.hwsim.rtunit import checkpoint_buffer_bytes
from repro.render import GaussianRayTracer, default_camera_for
from repro.rt import FETCH_INTERNAL, FETCH_LEAF, RayTrace, TraceConfig

from tests.conftest import tiny_cloud


class TestCache:
    def test_hit_after_fill(self):
        cache = SetAssociativeCache(1024, 64, 4)
        assert not cache.access(5)
        assert cache.access(5)
        assert cache.stats.hit_rate == 0.5

    def test_lru_eviction(self):
        cache = SetAssociativeCache(4 * 64, 64, 4)  # one set, 4 ways
        for line in range(4):
            cache.access(line)
        cache.access(0)  # refresh 0
        cache.access(99)  # evicts 1 (LRU)
        assert cache.access(0)
        assert not cache.access(1)

    def test_sets_isolate_addresses(self):
        cache = SetAssociativeCache(2 * 2 * 64, 64, 2)  # 2 sets, 2 ways
        cache.access(0)  # set 0
        cache.access(1)  # set 1
        cache.access(2)  # set 0
        cache.access(4)  # set 0 -> evicts 0
        assert cache.access(1)
        assert not cache.access(0)

    def test_prefetch_fill_no_demand_stat(self):
        cache = SetAssociativeCache(1024, 64, 4)
        cache.fill(7)
        assert cache.stats.accesses == 0
        assert cache.stats.prefetch_fills == 1
        assert cache.contains(7)
        assert cache.access(7)

    def test_lines_of(self):
        cache = SetAssociativeCache(1024, 128, 4)
        assert list(cache.lines_of(0, 128)) == [0]
        assert list(cache.lines_of(100, 128)) == [0, 1]
        assert list(cache.lines_of(256, 1)) == [2]

    def test_size_validation(self):
        with pytest.raises(ValueError):
            SetAssociativeCache(1000, 64, 4)

    @given(st.lists(st.integers(0, 200), min_size=1, max_size=300))
    @settings(max_examples=30)
    def test_capacity_never_exceeded(self, lines):
        cache = SetAssociativeCache(8 * 64, 64, 2)
        for line in lines:
            cache.access(line)
        for s in cache._sets:
            assert len(s) <= cache.ways


class TestConfig:
    def test_table1_rows(self):
        rows = dict(GpuConfig.rtx_like().table1_rows())
        assert "8, 1365 MHz, in-order" in rows["# Streaming Multiprocessors (SM)"]
        assert rows["Warp Buffer Size"] == "8"

    def test_amd_variant(self):
        amd = GpuConfig.amd_like(scene_scale=0.01)
        assert amd.shader_issued_fetch_cycles > 0
        assert amd.bvh_size_scale > 1.0
        assert amd.max_buffer_bytes == int(4 * 1024 ** 3 * 0.01)

    def test_cycles_to_ms(self):
        gpu = GpuConfig.rtx_like()
        assert gpu.cycles_to_ms(1365e3) == pytest.approx(1.0)


def _synthetic_trace(addrs, kind=FETCH_INTERNAL, label="primary"):
    trace = RayTrace(label=label)
    rt = trace.begin_round()
    for addr in addrs:
        rt.fetch(addr, 128, kind, box_tests=1)
        trace.note_fetch(addr, kind)
    return trace


class TestReplay:
    def test_empty(self):
        report = replay([], GpuConfig.rtx_like())
        assert report.cycles == 0.0

    def test_node_fetch_counting_with_merging(self):
        """Rays of one warp requesting the same address within the merge
        window coalesce into one fetch."""
        traces = [_synthetic_trace([0]) for _ in range(4)]
        report = replay(traces, GpuConfig.rtx_like())
        assert report.node_fetches == 1
        assert report.merged_requests == 3

    def test_merge_window_bounded(self):
        """Requests farther apart than the merge window don't coalesce."""
        config = GpuConfig.rtx_like()
        span = (config.merge_window_size + 2)
        addrs = [i * 1024 for i in range(span)] + [0]
        report = replay([_synthetic_trace(addrs)], config)
        assert report.node_fetches == span + 1  # the repeat of 0 is NOT merged

    def test_repeated_fetch_hits_l1(self):
        config = GpuConfig.rtx_like()
        far = (config.merge_window_size + 2)
        addrs = [i * 1024 for i in range(far)] + [0]
        report = replay([_synthetic_trace(addrs)], config)
        assert report.l1_hits >= 1
        assert 0 < report.l1_hit_rate < 1

    def test_footprint_counts_unique_lines(self):
        report = replay([_synthetic_trace([0, 128, 0, 128, 256])], GpuConfig.rtx_like())
        assert report.footprint_bytes == 3 * 128

    def test_label_cycles_split(self):
        traces = [_synthetic_trace([i * 128], label="primary") for i in range(4)]
        traces += [_synthetic_trace([i * 128], label="secondary") for i in range(2)]
        report = replay(traces, GpuConfig.rtx_like())
        assert report.label_cycles["primary"] > 0
        assert report.label_cycles["secondary"] > 0

    def test_prefetch_populates_l1(self):
        trace = RayTrace()
        rt = trace.begin_round()
        rt.fetch(0, 128, FETCH_INTERNAL, box_tests=1, prefetch=[(4096, 128)])
        trace.note_fetch(0, FETCH_INTERNAL)
        rt.fetch(4096, 128, FETCH_LEAF, prim_tests=2, prim_kind=1)
        trace.note_fetch(4096, FETCH_LEAF)
        report = replay([trace], GpuConfig.rtx_like())
        assert report.prefetches == 1
        assert report.l1_hits >= 1  # demand fetch of 4096 hits

    def test_prefetch_disable(self):
        trace = RayTrace()
        rt = trace.begin_round()
        rt.fetch(0, 128, FETCH_INTERNAL, box_tests=1, prefetch=[(4096, 128)])
        rt.fetch(4096, 128, FETCH_LEAF, prim_tests=2, prim_kind=1)
        config = dataclasses.replace(GpuConfig.rtx_like(), prefetch_enabled=False)
        report = replay([trace], config)
        assert report.prefetches == 0

    def test_dram_latency_dominates_cold_fetches(self):
        config = GpuConfig.rtx_like()
        addrs = [i * 131072 for i in range(20)]  # distinct sets, cold
        report = replay([_synthetic_trace(addrs)], config)
        assert report.avg_fetch_latency >= config.l2_latency

    def test_more_rounds_cost_more_overhead(self):
        one = RayTrace()
        rt = one.begin_round()
        rt.fetch(0, 128, FETCH_INTERNAL, box_tests=1)
        many = RayTrace()
        for _ in range(5):
            rt = many.begin_round()
            rt.fetch(0, 128, FETCH_INTERNAL, box_tests=1)
        r1 = replay([one], GpuConfig.rtx_like())
        r5 = replay([many], GpuConfig.rtx_like())
        assert r5.cycles > r1.cycles

    def test_kbuffer_layout_affects_sorting_cost(self):
        trace = RayTrace()
        rt = trace.begin_round()
        rt.fetch(0, 128, FETCH_INTERNAL, box_tests=1)
        rt.anyhit_calls = 10
        rt.kbuffer_ops = 10
        soa = replay([trace], GpuConfig.rtx_like(), kbuffer_layout="soa")
        payload = replay([trace], GpuConfig.rtx_like(), kbuffer_layout="payload")
        assert soa.sorting_cycles > payload.sorting_cycles

    def test_end_to_end_replay_consistency(self):
        """Replaying a real render: fetches equal recorder totals minus
        merges, and component cycles are all positive."""
        cloud = tiny_cloud(96, seed=30)
        structure = build_two_level(cloud, "sphere")
        cam = default_camera_for(cloud, 6, 6)
        result = GaussianRayTracer(cloud, structure, TraceConfig(k=4)).render(cam)
        report = replay(result.traces, GpuConfig.rtx_like())
        recorded = sum(t.total_fetches for t in result.traces)
        assert report.node_fetches + report.merged_requests == recorded
        assert report.traversal_cycles > 0
        assert report.sorting_cycles > 0
        assert report.blending_cycles > 0
        assert report.cycles == max(report.sm_cycles)
        assert report.time_ms == pytest.approx(
            report.cycles / (GpuConfig.rtx_like().clock_mhz * 1e3)
        )

    def test_amd_fetch_cost_slower(self):
        cloud = tiny_cloud(96, seed=31)
        structure = build_monolithic(cloud, "20-tri")
        cam = default_camera_for(cloud, 6, 6)
        result = GaussianRayTracer(cloud, structure, TraceConfig(k=4)).render(cam)
        rtx = replay(result.traces, GpuConfig.rtx_like())
        amd = replay(result.traces, GpuConfig.amd_like())
        assert amd.cycles > rtx.cycles


class TestCheckpointHardware:
    def test_table3_total_is_1_05_kb(self):
        hw = checkpoint_hardware_cost()
        assert hw.total_kb == pytest.approx(1.05, abs=0.02)

    def test_formula_components(self):
        hw = checkpoint_hardware_cost()
        assert hw.per_thread_bits == 33
        assert hw.threads_per_warp == 32
        assert hw.warps == 8
        assert hw.base_register_bytes == 18

    def test_buffer_bytes_scale_with_high_water(self):
        small = checkpoint_buffer_bytes(10, 20)
        large = checkpoint_buffer_bytes(20, 40)
        assert large[0] == 2 * small[0]
        assert large[1] == 2 * small[1]

    def test_buffer_bytes_formula(self):
        config = GpuConfig.rtx_like()
        ckpt, evict = checkpoint_buffer_bytes(1, 1, config, max_warps_per_sm=32)
        concurrent = config.n_sms * 32 * config.warp_size
        assert ckpt == 2 * 20 * concurrent
        assert evict == 2 * 8 * concurrent
