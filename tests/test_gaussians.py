"""Tests for the Gaussian scene representation and response math."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gaussians import (
    GaussianCloud,
    WORKLOAD_SPECS,
    build_covariance,
    build_inverse_covariance,
    canonical_transforms,
    eval_sh,
    gaussian_alpha_along_ray,
    gaussian_response,
    make_workload,
    num_sh_coeffs,
    t_alpha,
    world_aabbs,
)
from repro.gaussians.sh import sh_basis
from repro.gaussians.synthetic import WORKLOAD_ORDER, size_boost
from repro.math3d import quat_random, quat_to_rotation_matrix

from tests.conftest import tiny_cloud


class TestGaussianCloud:
    def test_roundtrip_save_load(self, tmp_path):
        cloud = tiny_cloud(16)
        path = tmp_path / "scene.npz"
        cloud.save(path)
        loaded = GaussianCloud.load(path)
        np.testing.assert_array_equal(loaded.means, cloud.means)
        np.testing.assert_array_equal(loaded.sh, cloud.sh)
        assert loaded.kappa == cloud.kappa
        assert loaded.name == cloud.name

    def test_rotations_normalized_on_construction(self):
        cloud = tiny_cloud(8)
        cloud2 = GaussianCloud(
            means=cloud.means, scales=cloud.scales,
            rotations=cloud.rotations * 3.0,
            opacities=cloud.opacities, sh=cloud.sh,
        )
        np.testing.assert_allclose(np.linalg.norm(cloud2.rotations, axis=1), 1.0)

    def test_sh_degree(self):
        cloud = tiny_cloud(4)
        assert cloud.sh.shape[1] == 4
        assert cloud.sh_degree == 1

    def test_rejects_bad_shapes(self):
        cloud = tiny_cloud(4)
        with pytest.raises(ValueError):
            GaussianCloud(means=cloud.means[:, :2], scales=cloud.scales,
                          rotations=cloud.rotations, opacities=cloud.opacities,
                          sh=cloud.sh)

    def test_rejects_nonpositive_scales(self):
        cloud = tiny_cloud(4)
        bad = cloud.scales.copy()
        bad[0, 0] = 0.0
        with pytest.raises(ValueError):
            GaussianCloud(means=cloud.means, scales=bad, rotations=cloud.rotations,
                          opacities=cloud.opacities, sh=cloud.sh)

    def test_rejects_bad_opacity(self):
        cloud = tiny_cloud(4)
        bad = cloud.opacities.copy()
        bad[1] = 1.5
        with pytest.raises(ValueError):
            GaussianCloud(means=cloud.means, scales=cloud.scales,
                          rotations=cloud.rotations, opacities=bad, sh=cloud.sh)

    def test_subset(self):
        cloud = tiny_cloud(10)
        sub = cloud.subset(np.array([1, 3, 5]))
        assert len(sub) == 3
        np.testing.assert_array_equal(sub.means[1], cloud.means[3])

    def test_concatenate(self):
        a, b = tiny_cloud(5, seed=1), tiny_cloud(7, seed=2)
        merged = a.concatenate(b)
        assert len(merged) == 12
        np.testing.assert_array_equal(merged.means[5:], b.means)

    def test_concatenate_rejects_kappa_mismatch(self):
        a = tiny_cloud(4, kappa=3.0)
        b = tiny_cloud(4, kappa=2.0)
        with pytest.raises(ValueError):
            a.concatenate(b)


class TestCovariance:
    def test_covariance_spd(self):
        cloud = tiny_cloud(32)
        cov = build_covariance(cloud)
        eig = np.linalg.eigvalsh(cov)
        assert np.all(eig > 0.0)
        np.testing.assert_allclose(cov, np.swapaxes(cov, -1, -2), atol=1e-12)

    def test_inverse_covariance_is_inverse(self):
        cloud = tiny_cloud(32)
        cov = build_covariance(cloud)
        inv = build_inverse_covariance(cloud)
        eye = cov @ inv
        np.testing.assert_allclose(eye, np.broadcast_to(np.eye(3), eye.shape), atol=1e-8)

    def test_canonical_transform_maps_ellipsoid_to_unit_sphere(self):
        """The GRTX-SW core claim: kappa-sigma ellipsoid surface points map
        to the unit sphere under the world->object transform."""
        cloud = tiny_cloud(16)
        obj_to_world, world_to_obj = canonical_transforms(cloud)
        rng = np.random.default_rng(0)
        unit = rng.normal(size=(16, 3))
        unit /= np.linalg.norm(unit, axis=1, keepdims=True)
        world = np.einsum("nij,nj->ni", obj_to_world.linear, unit) + obj_to_world.offset
        back = np.einsum("nij,nj->ni", world_to_obj.linear, world) + world_to_obj.offset
        np.testing.assert_allclose(np.linalg.norm(back, axis=1), 1.0, atol=1e-9)

    def test_canonical_transform_consistent_with_mahalanobis(self):
        """kappa^2 * |x_obj|^2 equals the Mahalanobis distance — the
        identity that lets the canonical any-hit shader evaluate alpha in
        unit-sphere space."""
        cloud = tiny_cloud(8)
        inv_cov = build_inverse_covariance(cloud)
        _, world_to_obj = canonical_transforms(cloud)
        rng = np.random.default_rng(1)
        points = cloud.means + rng.normal(0, 0.3, size=(8, 3))
        diff = points - cloud.means
        mahal = np.einsum("ni,nij,nj->n", diff, inv_cov, diff)
        obj = np.einsum("nij,nj->ni", world_to_obj.linear, points) + world_to_obj.offset
        np.testing.assert_allclose(cloud.kappa ** 2 * np.sum(obj * obj, axis=1),
                                   mahal, rtol=1e-8)

    def test_world_aabbs_contain_ellipsoid_samples(self):
        cloud = tiny_cloud(12)
        lo, hi = world_aabbs(cloud)
        obj_to_world, _ = canonical_transforms(cloud)
        rng = np.random.default_rng(2)
        for _ in range(20):
            unit = rng.normal(size=(12, 3))
            unit /= np.linalg.norm(unit, axis=1, keepdims=True)
            world = np.einsum("nij,nj->ni", obj_to_world.linear, unit) + obj_to_world.offset
            assert np.all(world >= lo - 1e-9)
            assert np.all(world <= hi + 1e-9)

    def test_world_aabbs_tight(self):
        """The AABB must touch the ellipsoid (not be arbitrarily loose)."""
        cloud = tiny_cloud(12)
        lo, hi = world_aabbs(cloud)
        obj_to_world, _ = canonical_transforms(cloud)
        rng = np.random.default_rng(3)
        unit = rng.normal(size=(4096, 3))
        unit /= np.linalg.norm(unit, axis=1, keepdims=True)
        for g in range(12):
            world = unit @ obj_to_world.linear[g].T + obj_to_world.offset[g]
            sampled_lo = world.min(axis=0)
            sampled_hi = world.max(axis=0)
            ext = hi[g] - lo[g]
            assert np.all(sampled_lo - lo[g] < 0.05 * ext + 1e-9)
            assert np.all(hi[g] - sampled_hi < 0.05 * ext + 1e-9)


class TestResponse:
    def test_t_alpha_is_argmax_of_response(self):
        cloud = tiny_cloud(8)
        inv_cov = build_inverse_covariance(cloud)
        rng = np.random.default_rng(4)
        origins = cloud.means + rng.uniform(-3, -2, size=(8, 3))
        directions = rng.normal(size=(8, 3))
        t_peak = t_alpha(inv_cov, cloud.means, origins, directions)
        for eps in (-1e-3, 1e-3):
            shifted = origins + (t_peak + eps)[:, None] * directions
            peak = origins + t_peak[:, None] * directions
            assert np.all(
                gaussian_response(inv_cov, cloud.means, peak)
                >= gaussian_response(inv_cov, cloud.means, shifted)
            )

    def test_response_at_mean_is_one(self):
        cloud = tiny_cloud(8)
        inv_cov = build_inverse_covariance(cloud)
        np.testing.assert_allclose(
            gaussian_response(inv_cov, cloud.means, cloud.means), 1.0
        )

    def test_alpha_bounded_by_opacity(self):
        cloud = tiny_cloud(16)
        inv_cov = build_inverse_covariance(cloud)
        rng = np.random.default_rng(5)
        origins = rng.uniform(-10, 10, size=(16, 3))
        directions = rng.normal(size=(16, 3))
        alpha, _ = gaussian_alpha_along_ray(
            inv_cov, cloud.means, cloud.opacities, origins, directions
        )
        assert np.all(alpha <= cloud.opacities + 1e-12)
        assert np.all(alpha >= 0.0)

    def test_ray_through_mean_gets_full_opacity(self):
        cloud = tiny_cloud(8)
        inv_cov = build_inverse_covariance(cloud)
        origins = cloud.means - np.array([5.0, 0.0, 0.0])
        directions = np.tile(np.array([1.0, 0.0, 0.0]), (8, 1))
        alpha, t_eval = gaussian_alpha_along_ray(
            inv_cov, cloud.means, cloud.opacities, origins, directions
        )
        np.testing.assert_allclose(alpha, cloud.opacities, rtol=1e-9)
        np.testing.assert_allclose(t_eval, 5.0, atol=1e-9)

    def test_degenerate_direction(self):
        cloud = tiny_cloud(1)
        inv_cov = build_inverse_covariance(cloud)
        t = t_alpha(inv_cov, cloud.means, cloud.means + 1.0, np.zeros((1, 3)))
        assert t[0] == 0.0


class TestSphericalHarmonics:
    def test_coeff_counts(self):
        assert [num_sh_coeffs(d) for d in range(4)] == [1, 4, 9, 16]

    def test_rejects_bad_degree(self):
        with pytest.raises(ValueError):
            num_sh_coeffs(4)

    def test_degree0_isotropic(self):
        coeffs = np.zeros((1, 1, 3))
        coeffs[0, 0] = [1.0, 2.0, 3.0]
        a = eval_sh(coeffs, np.array([[0.0, 0.0, 1.0]]))
        b = eval_sh(coeffs, np.array([[1.0, 0.0, 0.0]]))
        np.testing.assert_allclose(a, b)

    def test_view_dependence_with_degree1(self):
        coeffs = np.zeros((1, 4, 3))
        coeffs[0, 3] = [1.0, 1.0, 1.0]  # the -C1*x basis function
        a = eval_sh(coeffs, np.array([[1.0, 0.0, 0.0]]))
        b = eval_sh(coeffs, np.array([[-1.0, 0.0, 0.0]]))
        assert not np.allclose(a, b)

    @given(st.integers(0, 3))
    @settings(max_examples=8)
    def test_basis_orthogonality(self, degree):
        """Monte-Carlo check that distinct SH basis functions are
        orthogonal over the sphere (the defining property)."""
        rng = np.random.default_rng(degree)
        dirs = rng.normal(size=(20000, 3))
        dirs /= np.linalg.norm(dirs, axis=1, keepdims=True)
        basis = sh_basis(dirs, degree)
        gram = basis.T @ basis / dirs.shape[0] * 4 * np.pi
        off_diag = gram - np.diag(np.diag(gram))
        assert np.abs(off_diag).max() < 0.15

    def test_colors_non_negative(self):
        rng = np.random.default_rng(6)
        coeffs = rng.normal(0, 2.0, size=(32, 9, 3))
        dirs = rng.normal(size=(32, 3))
        dirs /= np.linalg.norm(dirs, axis=1, keepdims=True)
        assert np.all(eval_sh(coeffs, dirs) >= 0.0)


class TestSyntheticWorkloads:
    def test_all_six_scenes_exist(self):
        assert set(WORKLOAD_ORDER) == set(WORKLOAD_SPECS)
        assert len(WORKLOAD_ORDER) == 6

    def test_counts_scale_with_paper_counts(self):
        scale = 1.0 / 2000.0
        counts = {name: len(make_workload(name, scale)) for name in WORKLOAD_ORDER}
        assert counts["truck"] > counts["train"] > counts["bonsai"]
        assert counts["room"] == min(counts.values())

    def test_reproducible(self):
        a = make_workload("bonsai", scale=1 / 4000)
        b = make_workload("bonsai", scale=1 / 4000)
        np.testing.assert_array_equal(a.means, b.means)
        np.testing.assert_array_equal(a.sh, b.sh)

    def test_unknown_scene_raises(self):
        with pytest.raises(KeyError):
            make_workload("nonexistent")

    def test_bonsai_is_more_clustered_than_truck(self):
        """The paper's characterization: Bonsai concentrates small
        Gaussians in dense regions, Truck spreads them uniformly."""
        bonsai = make_workload("bonsai", scale=1 / 1000)
        truck = make_workload("truck", scale=1 / 1000)
        bonsai_spread = np.std(bonsai.means / WORKLOAD_SPECS["bonsai"].extent, axis=0).mean()
        truck_spread = np.std(truck.means / WORKLOAD_SPECS["truck"].extent, axis=0).mean()
        assert bonsai_spread < truck_spread
        bonsai_size = np.median(bonsai.scales)
        truck_size = np.median(truck.scales)
        assert bonsai_size < truck_size

    def test_wall_scenes_have_opaque_tail(self):
        drj = make_workload("drjohnson", scale=1 / 1000)
        frac_opaque = np.mean(drj.opacities > 0.5)
        assert frac_opaque > 0.1

    def test_size_boost_monotonic(self):
        assert size_boost(1.0) == pytest.approx(1.0)
        assert size_boost(0.01) > size_boost(0.1) > 1.0

    def test_size_boost_rejects_bad_scale(self):
        with pytest.raises(ValueError):
            size_boost(0.0)
        with pytest.raises(ValueError):
            size_boost(2.0)

    def test_sh_degree_parameter(self):
        cloud = make_workload("room", scale=1 / 4000, sh_degree=2)
        assert cloud.sh_degree == 2
