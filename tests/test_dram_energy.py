"""Tests for the banked DRAM model and the energy model."""

from dataclasses import replace

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import GaussianRayTracer, GpuConfig, TraceConfig, build_two_level, \
    default_camera_for, make_workload, replay
from repro.hwsim import DramModel, DramTimings, EnergyParams, estimate_energy
from repro.hwsim.replay import TimingReport


class TestDramTimings:
    def test_latency_ordering(self):
        t = DramTimings()
        assert t.row_hit_latency < t.row_empty_latency < t.row_conflict_latency

    def test_rejects_bad_geometry(self):
        with pytest.raises(ValueError):
            DramTimings(n_channels=0)
        with pytest.raises(ValueError):
            DramTimings(row_bytes=1000)  # not a power of two


class TestDramModel:
    def test_first_access_is_row_empty(self):
        dram = DramModel()
        lat = dram.access(0)
        assert lat == dram.timings.row_empty_latency
        assert dram.stats.row_empties == 1

    def test_same_row_hits(self):
        dram = DramModel()
        dram.access(0)
        lat = dram.access(64)  # same 2 KB row
        assert lat == dram.timings.row_hit_latency
        assert dram.stats.row_hits == 1

    def test_conflict_on_same_bank_different_row(self):
        dram = DramModel()
        t = dram.timings
        stride = t.row_bytes * t.n_channels * t.banks_per_channel  # same bank, next row
        dram.access(0)
        lat = dram.access(stride)
        assert lat == t.row_conflict_latency
        assert dram.stats.row_conflicts == 1

    def test_different_banks_do_not_conflict(self):
        dram = DramModel()
        dram.access(0)
        lat = dram.access(dram.timings.row_bytes)  # next row -> different bank
        assert lat == dram.timings.row_empty_latency

    def test_sequential_stream_mostly_hits(self):
        dram = DramModel()
        for addr in range(0, 64 * 1024, 128):
            dram.access(addr)
        assert dram.stats.row_hit_rate > 0.9

    def test_random_stream_mostly_misses(self):
        rng = np.random.default_rng(0)
        dram = DramModel()
        for addr in rng.integers(0, 1 << 30, 2000):
            dram.access(int(addr))
        assert dram.stats.row_hit_rate < 0.2

    def test_reset_clears_state(self):
        dram = DramModel()
        dram.access(0)
        dram.reset()
        assert dram.stats.accesses == 0
        assert dram.access(0) == dram.timings.row_empty_latency

    @given(st.lists(st.integers(0, 1 << 32), min_size=1, max_size=200))
    @settings(max_examples=30, deadline=None)
    def test_stats_always_consistent(self, addrs):
        dram = DramModel()
        for addr in addrs:
            lat = dram.access(addr)
            assert lat >= dram.timings.row_hit_latency
        assert dram.stats.accesses == len(addrs)
        assert 0.0 <= dram.stats.row_hit_rate <= 1.0


@pytest.fixture(scope="module")
def small_render():
    cloud = make_workload("room", scale=1 / 1000)
    structure = build_two_level(cloud, blas_kind="sphere")
    renderer = GaussianRayTracer(cloud, structure, TraceConfig(k=8))
    return renderer.render(default_camera_for(cloud, 10, 10))


class TestBankedReplay:
    def test_banked_model_populates_row_hit_rate(self, small_render):
        banked = replace(GpuConfig.rtx_like(), dram_model="banked")
        report = replay(small_render.traces, banked)
        assert 0.0 <= report.dram_row_hit_rate <= 1.0

    def test_flat_model_reports_zero_row_rate(self, small_render):
        report = replay(small_render.traces, GpuConfig.rtx_like())
        assert report.dram_row_hit_rate == 0.0

    def test_banked_and_flat_agree_on_counters(self, small_render):
        flat = replay(small_render.traces, GpuConfig.rtx_like())
        banked = replay(small_render.traces,
                        replace(GpuConfig.rtx_like(), dram_model="banked"))
        # Caches are unchanged; only DRAM latency differs.
        assert banked.node_fetches == flat.node_fetches
        assert banked.l2_accesses == flat.l2_accesses
        assert banked.dram_accesses == flat.dram_accesses


class TestEnergyModel:
    def test_components_nonnegative(self, small_render):
        report = replay(small_render.traces, GpuConfig.rtx_like())
        energy = estimate_energy(report, GpuConfig.rtx_like())
        assert energy.l1_nj >= 0 and energy.l2_nj >= 0 and energy.dram_nj >= 0
        assert energy.compute_nj >= 0 and energy.static_nj >= 0
        assert energy.total_nj == pytest.approx(energy.dynamic_nj + energy.static_nj)

    def test_memory_fraction_bounded(self, small_render):
        report = replay(small_render.traces, GpuConfig.rtx_like())
        energy = estimate_energy(report)
        assert 0.0 <= energy.memory_fraction <= 1.0

    def test_energy_scales_with_accesses(self):
        a = TimingReport(l1_accesses=100, l2_accesses=10, dram_accesses=1)
        b = TimingReport(l1_accesses=200, l2_accesses=20, dram_accesses=2)
        ea = estimate_energy(a)
        eb = estimate_energy(b)
        assert eb.l1_nj == pytest.approx(2 * ea.l1_nj)
        assert eb.dram_nj == pytest.approx(2 * ea.dram_nj)

    def test_dram_dominates_per_access(self):
        params = EnergyParams()
        assert params.dram_access_pj > params.l2_access_pj > params.l1_access_pj

    def test_rejects_nonpositive_energy_constants(self):
        with pytest.raises(ValueError):
            EnergyParams(l1_access_pj=0.0)

    def test_as_row_keys(self, small_render):
        report = replay(small_render.traces, GpuConfig.rtx_like())
        row = estimate_energy(report).as_row()
        assert set(row) == {"l1_nj", "l2_nj", "dram_nj", "compute_nj",
                            "static_nj", "total_nj"}

    def test_grtx_uses_less_memory_energy_than_baseline(self):
        # The headline: shared BLAS + checkpointing cut fetch counts, so
        # memory energy must drop.
        from repro import build_monolithic

        cloud = make_workload("room", scale=1 / 1000)
        camera = default_camera_for(cloud, 10, 10)
        base = GaussianRayTracer(
            cloud, build_monolithic(cloud, proxy="20-tri"), TraceConfig(k=8)
        ).render(camera)
        grtx = GaussianRayTracer(
            cloud, build_two_level(cloud, blas_kind="sphere"),
            TraceConfig(k=8, checkpointing=True),
        ).render(camera)
        config = GpuConfig.rtx_like()
        e_base = estimate_energy(replay(base.traces, config), config)
        e_grtx = estimate_energy(replay(grtx.traces, config), config)
        mem_base = e_base.l2_nj + e_base.dram_nj
        mem_grtx = e_grtx.l2_nj + e_grtx.dram_nj
        assert mem_grtx < mem_base
