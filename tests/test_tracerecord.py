"""Trace equivalence: the packet recorder vs the scalar tracer.

The contract under test is exact stream equality — for every supported
(structure, mode) pair, the packet engine's recorded per-ray
``RayTrace``s are event-for-event the scalar tracer's: same fetch
records (addresses, sizes, kinds, test counts), same prefetch pair
lists, same per-round counters, same round structure, same unique/total
visit statistics — so a replayed :class:`TimingReport` is identical
whichever engine produced the traces, and so are the fig14–17
aggregates (node fetches, L1 hits, L2 accesses).

Also covered here: the vectorized :func:`repro.hwsim.replay` against
its golden reference loop (:func:`repro.hwsim.replay_reference`), on
both the eviction-free fast path and the sequential fallback.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.bvh import build_monolithic, build_two_level
from repro.hwsim import GpuConfig, replay, replay_reference
from repro.hwsim.treelet import build_treelet_map
from repro.render import GaussianRayTracer, SceneObjects, default_camera_for
from repro.rt import TraceConfig

from tests.conftest import tiny_cloud

STRUCTURES = ("20-tri", "custom", "tlas+sphere", "tlas+20-tri")


@pytest.fixture(scope="module")
def cloud():
    return tiny_cloud(n=128, seed=21)


@pytest.fixture(scope="module")
def structures(cloud):
    return {
        "20-tri": build_monolithic(cloud, "20-tri"),
        "custom": build_monolithic(cloud, "custom"),
        "tlas+sphere": build_two_level(cloud, "sphere"),
        "tlas+20-tri": build_two_level(cloud, "icosphere", 0),
    }


def _round_key(rnd):
    return (list(rnd.stream), list(rnd.pf), rnd.anyhit_calls,
            rnd.kbuffer_ops, rnd.false_positives, rnd.blended,
            rnd.checkpoints_written, rnd.evictions_written)


def _assert_traces_equal(scalar_traces, packet_traces):
    assert len(scalar_traces) == len(packet_traces)
    for label in ("primary", "secondary"):
        s_traces = [t for t in scalar_traces if t.label == label]
        p_traces = [t for t in packet_traces if t.label == label]
        assert len(s_traces) == len(p_traces)
        for s, p in zip(s_traces, p_traces):
            assert s.n_rounds == p.n_rounds
            for sr, pr in zip(s.rounds, p.rounds):
                assert _round_key(sr) == _round_key(pr)
            assert s.fetch_multiset() == p.fetch_multiset()
            assert s.unique_internal == p.unique_internal
            assert s.unique_leaf == p.unique_leaf
            assert (s.total_internal, s.total_leaf) == (
                p.total_internal, p.total_leaf)
            assert (s.ckpt_high_water, s.evict_high_water) == (
                p.ckpt_high_water, p.evict_high_water)


def _assert_reports_equal(a, b):
    for field in dataclasses.fields(a):
        assert getattr(a, field.name) == getattr(b, field.name), field.name


def _render_pair(cloud, structure, config, camera, objects=None):
    scalar = GaussianRayTracer(cloud, structure, config,
                               engine="scalar").render(
        camera, objects=objects, keep_traces=True)
    packet = GaussianRayTracer(cloud, structure, config,
                               engine="packet").render(
        camera, objects=objects, keep_traces=True)
    return scalar, packet


class TestTraceEquivalence:
    """Scalar-vs-packet per-ray streams across the support matrix."""

    @pytest.mark.parametrize("proxy", STRUCTURES)
    @pytest.mark.parametrize("mode", ["multiround", "singleround"])
    def test_streams_counters_and_replay(self, cloud, structures, proxy, mode):
        config = TraceConfig(k=4, mode=mode)
        camera = default_camera_for(cloud, 8, 8)
        scalar, packet = _render_pair(cloud, structures[proxy], config, camera)
        _assert_traces_equal(scalar.traces, packet.traces)
        assert scalar.stats == packet.stats
        _assert_reports_equal(replay(scalar.traces, GpuConfig.rtx_like()),
                              replay(packet.traces, GpuConfig.rtx_like()))

    @pytest.mark.parametrize("proxy", ["20-tri", "tlas+sphere", "tlas+20-tri"])
    def test_secondary_rays_and_t_clip(self, cloud, structures, proxy):
        """Scene objects clip primaries and spawn secondary warps; both
        label streams must reconstruct identically."""
        config = TraceConfig(k=4)
        camera = default_camera_for(cloud, 8, 8)
        objects = SceneObjects.default_for(cloud)
        scalar, packet = _render_pair(cloud, structures[proxy], config,
                                      camera, objects=objects)
        assert any(t.label == "secondary" for t in scalar.traces)
        _assert_traces_equal(scalar.traces, packet.traces)
        assert scalar.stats == packet.stats
        _assert_reports_equal(replay(scalar.traces, GpuConfig.rtx_like()),
                              replay(packet.traces, GpuConfig.rtx_like()))

    def test_k1_max_rounds_cap(self, cloud, structures):
        """k=1 with a tight round cap exercises the frontier carry-over
        and the round-cap break in the reconstruction."""
        config = TraceConfig(k=1, max_rounds=3)
        camera = default_camera_for(cloud, 8, 8)
        scalar, packet = _render_pair(cloud, structures["tlas+20-tri"],
                                      config, camera)
        _assert_traces_equal(scalar.traces, packet.traces)
        assert scalar.stats == packet.stats

    def test_early_termination(self, cloud, structures):
        config = TraceConfig(k=16, transmittance_min=0.97)
        camera = default_camera_for(cloud, 8, 8)
        scalar, packet = _render_pair(cloud, structures["tlas+sphere"],
                                      config, camera)
        assert scalar.stats.rays_terminated_early > 0
        _assert_traces_equal(scalar.traces, packet.traces)
        assert scalar.stats == packet.stats

    def test_fig_aggregates_match(self, cloud, structures):
        """The fig14/16/17 quantities — node fetches, L1 hits, L2
        accesses — are identical from either engine's traces."""
        camera = default_camera_for(cloud, 8, 8)
        for proxy in ("20-tri", "tlas+20-tri"):
            scalar, packet = _render_pair(
                cloud, structures[proxy], TraceConfig(k=8), camera)
            a = replay(scalar.traces, GpuConfig.rtx_like())
            b = replay(packet.traces, GpuConfig.rtx_like())
            assert a.node_fetches == b.node_fetches
            assert a.l1_hits == b.l1_hits
            assert a.l2_accesses == b.l2_accesses
            assert a.cycles == b.cycles

    def test_recorded_result_matches_plain_packet(self, cloud, structures):
        """Recording must not perturb the render: colors and parity
        counters equal the plain packet path bit for bit."""
        from repro.rt import PacketTracer, SceneShading

        config = TraceConfig(k=4)
        shading = SceneShading(cloud)
        camera = default_camera_for(cloud, 8, 8)
        bundle = camera.generate_rays()
        for proxy in STRUCTURES:
            tracer = PacketTracer(structures[proxy], shading, config)
            plain = tracer.trace_packet(bundle.origins, bundle.directions)
            recorded, traces = tracer.trace_packet_recorded(
                bundle.origins, bundle.directions)
            assert np.array_equal(plain.colors, recorded.colors), proxy
            assert np.array_equal(plain.blended, recorded.blended), proxy
            assert np.array_equal(plain.terminated, recorded.terminated)
            assert plain.anyhit_calls == recorded.anyhit_calls
            assert plain.false_positives == recorded.false_positives
            assert len(traces) == len(bundle)

    def test_tiled_pooled_recording_ships_traces(self, cloud, structures):
        """Recording composes with pooled tiles: the reassembled frame
        carries every ray's trace and the same whole-frame multiset."""
        from repro.serve import TileScheduler

        config = TraceConfig(k=4)
        camera = default_camera_for(cloud, 8, 8)
        ref = GaussianRayTracer(cloud, structures["tlas+sphere"], config,
                                engine="packet").render(
            camera, keep_traces=True)
        with TileScheduler(tile_size=(4, 4), workers=2) as scheduler:
            pooled = scheduler.render(cloud, structures["tlas+sphere"],
                                      config, camera, keep_traces=True,
                                      engine="packet")
        assert np.array_equal(ref.image, pooled.image)
        assert len(pooled.traces) == len(ref.traces)
        ref_ms = sorted(tuple(sorted(t.fetch_multiset().items()))
                        for t in ref.traces)
        pooled_ms = sorted(tuple(sorted(t.fetch_multiset().items()))
                           for t in pooled.traces)
        assert ref_ms == pooled_ms


class TestReplayVectorization:
    """The batched replay against its golden per-event reference."""

    @pytest.mark.parametrize("proxy", ["20-tri", "tlas+sphere"])
    def test_fast_path_matches_reference(self, cloud, structures, proxy):
        result = GaussianRayTracer(
            cloud, structures[proxy], TraceConfig(k=4)).render(
            default_camera_for(cloud, 8, 8))
        for config in (GpuConfig.rtx_like(), GpuConfig.amd_like(),
                       dataclasses.replace(GpuConfig.rtx_like(),
                                           prefetch_enabled=False),
                       dataclasses.replace(GpuConfig.rtx_like(),
                                           dram_model="banked")):
            _assert_reports_equal(replay(result.traces, config),
                                  replay_reference(result.traces, config))

    def test_eviction_fallback_matches_reference(self, cloud, structures):
        """Tiny caches force LRU evictions, exercising the sequential
        tag walk instead of the first-occurrence fast path."""
        result = GaussianRayTracer(
            cloud, structures["20-tri"], TraceConfig(k=4)).render(
            default_camera_for(cloud, 8, 8))
        small = dataclasses.replace(
            GpuConfig.rtx_like(), l1_bytes=2 * 128 * 2, l1_ways=2,
            l2_bytes=128 * 16 * 4, l2_ways=4)
        _assert_reports_equal(replay(result.traces, small),
                              replay_reference(result.traces, small))

    def test_treelet_path_matches_reference(self, cloud, structures):
        structure = structures["20-tri"]
        result = GaussianRayTracer(
            cloud, structure, TraceConfig(k=4)).render(
            default_camera_for(cloud, 8, 8))
        tmap = build_treelet_map(structure, 1024)
        _assert_reports_equal(
            replay(result.traces, GpuConfig.rtx_like(), treelet_map=tmap),
            replay_reference(result.traces, GpuConfig.rtx_like(),
                             treelet_map=tmap))

    def test_non_power_of_two_warp_buffer(self, cloud, structures):
        """The fast path's per-segment latency sums must divide by the
        warp-buffer depth per event (the reference's accumulation
        order), which only shows when overlap is not a power of two."""
        result = GaussianRayTracer(
            cloud, structures["tlas+sphere"], TraceConfig(k=4)).render(
            default_camera_for(cloud, 8, 8))
        for wbs in (6, 7, 12):
            config = dataclasses.replace(GpuConfig.rtx_like(),
                                         warp_buffer_size=wbs)
            _assert_reports_equal(replay(result.traces, config),
                                  replay_reference(result.traces, config))

    def test_degenerate_merge_window_matches_reference(self, cloud,
                                                       structures):
        """A zero-capacity merge window never merges (every insert is
        evicted immediately); the duplicate-run shortcut must not claim
        otherwise. Capacity 1 exercises the shortcut's smallest case."""
        result = GaussianRayTracer(
            cloud, structures["tlas+sphere"], TraceConfig(k=4)).render(
            default_camera_for(cloud, 8, 8))
        for cap in (0, 1):
            config = dataclasses.replace(GpuConfig.rtx_like(),
                                         merge_window_size=cap)
            _assert_reports_equal(replay(result.traces, config),
                                  replay_reference(result.traces, config))

    def test_invalid_cache_geometry_raises(self, cloud, structures):
        """The fast path validates cache geometry like the reference's
        SetAssociativeCache construction does."""
        result = GaussianRayTracer(
            cloud, structures["tlas+sphere"], TraceConfig(k=4)).render(
            default_camera_for(cloud, 6, 6))
        bad = dataclasses.replace(GpuConfig.rtx_like(), l1_bytes=1000)
        with pytest.raises(ValueError, match="multiple of line_bytes"):
            replay(result.traces, bad)
        with pytest.raises(ValueError, match="multiple of line_bytes"):
            replay_reference(result.traces, bad)

    def test_kbuffer_layouts_match(self, cloud, structures):
        result = GaussianRayTracer(
            cloud, structures["tlas+sphere"], TraceConfig(k=4)).render(
            default_camera_for(cloud, 6, 6))
        for layout in ("soa", "payload"):
            _assert_reports_equal(
                replay(result.traces, GpuConfig.rtx_like(),
                       kbuffer_layout=layout),
                replay_reference(result.traces, GpuConfig.rtx_like(),
                                 kbuffer_layout=layout))

    def test_recorded_packet_traces_replay_identically(self, cloud,
                                                       structures):
        """End to end: packet traces through the batched replay equal
        scalar traces through the reference replay."""
        config = TraceConfig(k=4)
        camera = default_camera_for(cloud, 8, 8)
        scalar, packet = _render_pair(cloud, structures["tlas+20-tri"],
                                      config, camera)
        _assert_reports_equal(
            replay_reference(scalar.traces, GpuConfig.rtx_like()),
            replay(packet.traces, GpuConfig.rtx_like()))


class TestRecorderViews:
    """Zero-copy stream views (the replay's decode substrate)."""

    def test_events_view_layout(self):
        from repro.rt import RoundTrace
        from repro.rt.recorder import RECORD_FIELDS

        rnd = RoundTrace()
        rnd.fetch(1000, 208, 1, box_tests=6, prefetch=[(2000, 144),
                                                       (3000, 208)])
        rnd.fetch(2000, 144, 2, prim_tests=4, prim_kind=1)
        view = rnd.events_view()
        assert view.shape == (2, RECORD_FIELDS)
        assert view[0].tolist() == [1000, 208, 1, 6, 0, 0, 2]
        assert view[1].tolist() == [2000, 144, 2, 0, 4, 1, 0]
        pairs = rnd.prefetch_view()
        assert pairs.tolist() == [[2000, 144], [3000, 208]]
        # Zero-copy: the view reflects the live buffer.
        assert view.base is not None

    def test_views_memoized_by_length(self):
        from repro.rt import RoundTrace

        rnd = RoundTrace()
        rnd.fetch(0, 128, 1, box_tests=1)
        first = rnd.events_view()
        assert rnd.events_view() is first

    def test_empty_views(self):
        from repro.rt import RoundTrace

        rnd = RoundTrace()
        assert rnd.events_view().shape == (0, 7)
        assert rnd.prefetch_view().shape == (0, 2)
