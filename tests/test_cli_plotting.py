"""Tests for the CLI and the text-mode plotting helpers."""

import numpy as np
import pytest

from repro.cli import main
from repro.eval.plotting import bar_chart, chart_for_result, grouped_bar_chart, line_chart


class TestBarChart:
    def test_longest_bar_belongs_to_max(self):
        chart = bar_chart(["a", "bb", "ccc"], [1.0, 3.0, 2.0])
        lines = chart.splitlines()
        bar_lengths = [line.count("█") for line in lines]
        assert bar_lengths[1] == max(bar_lengths)

    def test_values_appear_in_output(self):
        chart = bar_chart(["x"], [42.0], unit="ms")
        assert "42" in chart and "ms" in chart

    def test_title_included(self):
        assert bar_chart(["a"], [1.0], title="Figure 99").startswith("Figure 99")

    def test_empty_input(self):
        assert bar_chart([], [], title="nothing") == "nothing"

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            bar_chart(["a"], [1.0, 2.0])

    def test_zero_values_render(self):
        chart = bar_chart(["a", "b"], [0.0, 0.0])
        assert "a" in chart


class TestGroupedBarChart:
    def test_all_series_rendered_per_group(self):
        chart = grouped_bar_chart(
            ["train", "truck"],
            {"Baseline": [2.0, 3.0], "GRTX": [1.0, 1.5]},
        )
        assert chart.count("Baseline") == 2
        assert chart.count("GRTX") == 2

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            grouped_bar_chart(["a"], {"s": [1.0, 2.0]})


class TestLineChart:
    def test_contains_markers_and_legend(self):
        chart = line_chart([1, 2, 4, 8], {"time": [4.0, 2.5, 2.0, 2.6]})
        assert "o time" in chart
        body = "\n".join(chart.splitlines()[1:-2])  # grid rows only
        assert body.count("o") >= 4  # every point plotted

    def test_multiple_series_distinct_markers(self):
        chart = line_chart([1, 2], {"a": [1.0, 2.0], "b": [2.0, 1.0]})
        assert "o a" in chart and "x b" in chart

    def test_constant_series_does_not_crash(self):
        chart = line_chart([1, 2, 3], {"flat": [5.0, 5.0, 5.0]})
        assert "flat" in chart

    def test_empty_input(self):
        assert line_chart([], {}, title="t") == "t"

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            line_chart([1, 2], {"s": [1.0]})


class TestChartForResult:
    def test_extracts_labels_and_values(self):
        class FakeResult:
            exp_id = "fig99"
            columns = ["scene", "speedup"]
            rows = [["train", 2.0], ["truck", 3.0]]

        chart = chart_for_result(FakeResult())
        assert "fig99" in chart
        assert "train" in chart and "truck" in chart

    def test_non_numeric_cells_become_zero(self):
        class FakeResult:
            exp_id = "figX"
            columns = ["scene", "val"]
            rows = [["a", "n/a"], ["b", 1.0]]

        chart = chart_for_result(FakeResult())
        assert "a" in chart


class TestCli:
    def test_workloads_lists_scenes(self, capsys):
        assert main(["workloads"]) == 0
        out = capsys.readouterr().out
        for scene in ("train", "truck", "bonsai", "room", "drjohnson", "playroom"):
            assert scene in out

    def test_render_writes_ppm(self, tmp_path, capsys):
        out_path = tmp_path / "r.ppm"
        code = main([
            "render", "room", "--size", "6", "--scale", "0.000666",
            "--out", str(out_path),
        ])
        assert code == 0
        data = out_path.read_bytes()
        assert data.startswith(b"P6\n6 6\n255\n")
        assert "node fetches" in capsys.readouterr().out

    def test_render_fisheye_camera(self, tmp_path):
        out_path = tmp_path / "f.ppm"
        code = main([
            "render", "room", "--size", "6", "--scale", "0.000666",
            "--camera", "fisheye", "--out", str(out_path),
        ])
        assert code == 0
        assert out_path.exists()

    def test_experiment_list(self, capsys):
        assert main(["experiment", "list"]) == 0
        out = capsys.readouterr().out
        assert "fig13" in out
        assert "table2" in out

    def test_experiment_unknown_id(self, capsys):
        assert main(["experiment", "no-such-figure"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_structures_compares_proxies(self, capsys):
        assert main(["structures", "room", "--scale", "0.000666"]) == 0
        out = capsys.readouterr().out
        assert "tlas+sphere" in out
        assert "20-tri" in out

    def test_unknown_command_exits(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])
