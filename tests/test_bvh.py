"""Tests for BVH construction: builder invariants, both structure
families, byte-size accounting."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bvh import (
    BuildParams,
    build_bvh,
    build_monolithic,
    build_two_level,
    internal_node_bytes,
    structure_stats,
)
from repro.bvh.layout import (
    CACHE_LINE_BYTES,
    CUSTOM_PRIM_BYTES,
    INSTANCE_BYTES,
    LEAF_HEADER_BYTES,
    TRIANGLE_BYTES,
    leaf_node_bytes,
)
from repro.bvh.node import KIND_EMPTY, KIND_INTERNAL, KIND_LEAF
from repro.gaussians import world_aabbs

from tests.conftest import tiny_cloud


def _random_boxes(n: int, seed: int = 0) -> tuple[np.ndarray, np.ndarray]:
    rng = np.random.default_rng(seed)
    lo = rng.uniform(-10, 10, size=(n, 3))
    hi = lo + rng.uniform(0.01, 1.0, size=(n, 3))
    return lo, hi


class TestBuilder:
    def test_validate_invariants(self):
        lo, hi = _random_boxes(500)
        bvh = build_bvh(lo, hi, TRIANGLE_BYTES)
        bvh.validate()

    def test_validate_median_strategy(self):
        lo, hi = _random_boxes(300, seed=1)
        bvh = build_bvh(lo, hi, TRIANGLE_BYTES, BuildParams(strategy="median"))
        bvh.validate()

    @given(st.integers(1, 200), st.sampled_from([2, 4, 6, 8]), st.sampled_from([1, 4]))
    @settings(max_examples=25, deadline=None)
    def test_all_prims_reachable_any_config(self, n, width, leaf_size):
        lo, hi = _random_boxes(n, seed=n)
        bvh = build_bvh(lo, hi, TRIANGLE_BYTES, BuildParams(width=width, leaf_size=leaf_size))
        bvh.validate()
        assert bvh.n_prims == n

    def test_width_respected(self):
        lo, hi = _random_boxes(400)
        for width in (2, 4, 6):
            bvh = build_bvh(lo, hi, TRIANGLE_BYTES, BuildParams(width=width))
            occupied = (bvh.child_kind != KIND_EMPTY).sum(axis=1)
            assert occupied.max() <= width

    def test_leaf_size_respected(self):
        lo, hi = _random_boxes(400)
        bvh = build_bvh(lo, hi, TRIANGLE_BYTES, BuildParams(leaf_size=4))
        assert bvh.leaf_count.max() <= 4

    def test_root_box_covers_all(self):
        lo, hi = _random_boxes(256, seed=2)
        bvh = build_bvh(lo, hi, TRIANGLE_BYTES)
        root_lo, root_hi = bvh.root_box()
        assert np.all(root_lo <= lo.min(axis=0) + 1e-12)
        assert np.all(root_hi >= hi.max(axis=0) - 1e-12)

    def test_single_primitive(self):
        lo, hi = _random_boxes(1)
        bvh = build_bvh(lo, hi, TRIANGLE_BYTES)
        bvh.validate()
        assert bvh.n_leaves == 1
        assert bvh.height >= 1

    def test_identical_centroids(self):
        """All primitives at the same point must still build a valid tree
        (the even-split fallback)."""
        lo = np.zeros((64, 3))
        hi = np.ones((64, 3))
        bvh = build_bvh(lo, hi, TRIANGLE_BYTES, BuildParams(leaf_size=2))
        bvh.validate()
        assert bvh.n_prims == 64

    def test_zero_prims_rejected(self):
        with pytest.raises(ValueError):
            build_bvh(np.zeros((0, 3)), np.zeros((0, 3)), TRIANGLE_BYTES)

    def test_bad_params_rejected(self):
        with pytest.raises(ValueError):
            BuildParams(width=1)
        with pytest.raises(ValueError):
            BuildParams(leaf_size=0)
        with pytest.raises(ValueError):
            BuildParams(strategy="bogus")

    def test_sah_beats_or_matches_median_on_clustered_input(self):
        """SAH should produce a tree whose total child surface area is no
        worse than the median split on strongly clustered input."""
        rng = np.random.default_rng(3)
        cluster_a = rng.normal(0.0, 0.1, size=(200, 3))
        cluster_b = rng.normal(8.0, 0.1, size=(200, 3))
        centers = np.concatenate([cluster_a, cluster_b])
        lo = centers - 0.05
        hi = centers + 0.05

        def tree_area(bvh):
            ext = np.maximum(bvh.child_hi - bvh.child_lo, 0.0)
            areas = ext[..., 0] * ext[..., 1] + ext[..., 1] * ext[..., 2] + ext[..., 2] * ext[..., 0]
            occupied = bvh.child_kind != KIND_EMPTY
            return float(areas[occupied].sum())

        sah = build_bvh(lo, hi, TRIANGLE_BYTES, BuildParams(strategy="sah"))
        median = build_bvh(lo, hi, TRIANGLE_BYTES, BuildParams(strategy="median"))
        assert tree_area(sah) <= tree_area(median) * 1.05

    def test_node_addresses_disjoint(self):
        lo, hi = _random_boxes(200, seed=4)
        bvh = build_bvh(lo, hi, TRIANGLE_BYTES)
        nb = internal_node_bytes(bvh.width)
        spans = [(int(a), int(a) + nb) for a in bvh.node_addr]
        spans += [(int(a), int(a) + int(s)) for a, s in zip(bvh.leaf_addr, bvh.leaf_bytes)]
        spans.sort()
        for (s0, e0), (s1, _e1) in zip(spans, spans[1:]):
            assert e0 <= s1, "overlapping byte ranges"

    def test_rebase_shifts_addresses(self):
        lo, hi = _random_boxes(50, seed=5)
        bvh = build_bvh(lo, hi, TRIANGLE_BYTES)
        before = bvh.node_addr.copy()
        bvh.rebase(4096)
        np.testing.assert_array_equal(bvh.node_addr, before + 4096)
        assert bvh.base_address == 4096


class TestLayout:
    def test_internal_node_bytes(self):
        assert internal_node_bytes(6) == 16 + 6 * 32
        with pytest.raises(ValueError):
            internal_node_bytes(1)

    def test_leaf_node_bytes(self):
        assert leaf_node_bytes(4, TRIANGLE_BYTES) == LEAF_HEADER_BYTES + 4 * 48
        with pytest.raises(ValueError):
            leaf_node_bytes(-1, TRIANGLE_BYTES)

    def test_cache_line(self):
        assert CACHE_LINE_BYTES == 128


class TestMonolithic:
    def test_triangle_counts(self, small_cloud, mono_20tri):
        assert mono_20tri.bvh.n_prims == 20 * len(small_cloud)
        mono80 = build_monolithic(small_cloud, "80-tri")
        assert mono80.bvh.n_prims == 80 * len(small_cloud)

    def test_custom_one_prim_per_gaussian(self, small_cloud, mono_custom):
        assert mono_custom.bvh.n_prims == len(small_cloud)

    def test_size_ordering(self, small_cloud, mono_20tri, mono_custom):
        """Fig 5b: triangle-proxy BVHs dwarf custom-primitive BVHs."""
        mono80 = build_monolithic(small_cloud, "80-tri")
        assert mono80.total_bytes > mono_20tri.total_bytes > mono_custom.total_bytes

    def test_unknown_proxy(self, small_cloud):
        with pytest.raises(ValueError):
            build_monolithic(small_cloud, "12-tri")

    def test_proxy_triangles_bound_gaussians(self, small_cloud, mono_20tri):
        """Every Gaussian's world AABB must be inside the union box of
        its proxy triangles."""
        lo, hi = world_aabbs(small_cloud)
        for gid in range(0, len(small_cloud), 7):
            mask = mono_20tri.tri_gaussian == gid
            tri_lo = np.minimum(
                np.minimum(mono_20tri.tri_v0[mask], mono_20tri.tri_v1[mask]),
                mono_20tri.tri_v2[mask],
            ).min(axis=0)
            tri_hi = np.maximum(
                np.maximum(mono_20tri.tri_v0[mask], mono_20tri.tri_v1[mask]),
                mono_20tri.tri_v2[mask],
            ).max(axis=0)
            assert np.all(tri_lo <= lo[gid] + 1e-9)
            assert np.all(tri_hi >= hi[gid] - 1e-9)

    def test_validate(self, mono_20tri, mono_custom):
        mono_20tri.bvh.validate()
        mono_custom.bvh.validate()


class TestTwoLevel:
    def test_tlas_one_instance_per_gaussian(self, small_cloud, tlas_sphere):
        assert tlas_sphere.tlas.n_prims == len(small_cloud)

    def test_shared_blas_is_tiny(self, tlas_sphere, tlas_icosphere):
        """The headline GRTX-SW property: the BLAS is shared and a few
        hundred bytes, not gigabytes."""
        assert tlas_sphere.blas.total_bytes < 256
        assert tlas_icosphere.blas.total_bytes < 8 * 1024

    def test_two_level_much_smaller_than_monolithic(self, mono_20tri, tlas_icosphere):
        assert tlas_icosphere.total_bytes < mono_20tri.total_bytes / 3

    def test_blas_region_disjoint_from_tlas(self, tlas_icosphere):
        tlas_end = tlas_icosphere.tlas.total_bytes
        assert tlas_icosphere.blas.base_address >= tlas_end
        assert int(tlas_icosphere.blas.bvh.node_addr.min()) >= tlas_end

    def test_proxy_names(self, tlas_sphere, tlas_icosphere, small_cloud):
        assert tlas_sphere.proxy == "tlas+sphere"
        assert tlas_icosphere.proxy == "tlas+20-tri"
        tlas80 = build_two_level(small_cloud, "icosphere", 1)
        assert tlas80.proxy == "tlas+80-tri"

    def test_instance_addresses_inside_leaves(self, tlas_sphere):
        tlas = tlas_sphere.tlas
        for leaf in range(tlas.n_leaves):
            count = int(tlas.leaf_count[leaf])
            for slot in range(count):
                addr = tlas_sphere.instance_address(leaf, slot)
                leaf_lo = int(tlas.leaf_addr[leaf])
                leaf_hi = leaf_lo + int(tlas.leaf_bytes[leaf])
                assert leaf_lo + LEAF_HEADER_BYTES <= addr
                assert addr + INSTANCE_BYTES <= leaf_hi

    def test_unknown_blas_kind(self, small_cloud):
        with pytest.raises(ValueError):
            build_two_level(small_cloud, "torus")

    def test_height_includes_blas(self, tlas_sphere, tlas_icosphere):
        assert tlas_icosphere.height > tlas_icosphere.tlas.height
        assert tlas_sphere.height == tlas_sphere.tlas.height + 1


class TestStats:
    def test_monolithic_stats(self, small_cloud, mono_20tri):
        stats = structure_stats(mono_20tri)
        assert stats.proxy == "20-tri"
        assert stats.n_primitives == 20 * len(small_cloud)
        assert stats.total_bytes == mono_20tri.total_bytes
        assert stats.total_mb == pytest.approx(stats.total_bytes / 2 ** 20)

    def test_two_level_stats(self, small_cloud, tlas_icosphere):
        stats = structure_stats(tlas_icosphere)
        assert stats.proxy == "tlas+20-tri"
        assert stats.n_primitives == len(small_cloud) + 20

    def test_rejects_unknown(self):
        with pytest.raises(TypeError):
            structure_stats(object())
