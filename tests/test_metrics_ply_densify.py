"""Tests for image metrics, PLY serialization, and density control."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gaussians import GaussianCloud, load_ply, make_workload, save_ply
from repro.gaussians.densify import (
    ContributionStats,
    DensifyParams,
    clone,
    collect_stats,
    densify_round,
    prune,
    split,
)
from repro.render import default_camera_for
from repro.render.metrics import frame_deltas, popping_score, ssim


def _tiny_cloud(n=10, seed=0, sh_coeffs=4):
    rng = np.random.default_rng(seed)
    return GaussianCloud(
        means=rng.uniform(-2, 2, (n, 3)),
        scales=rng.uniform(0.05, 0.5, (n, 3)),
        rotations=rng.normal(size=(n, 4)),
        opacities=rng.uniform(0.2, 0.9, n),
        sh=rng.normal(0, 0.3, (n, sh_coeffs, 3)),
        name="tiny",
    )


class TestSsim:
    def test_identical_images_score_one(self):
        img = np.random.default_rng(0).random((24, 24, 3))
        assert ssim(img, img) == pytest.approx(1.0)

    def test_independent_noise_scores_low(self):
        rng = np.random.default_rng(1)
        assert ssim(rng.random((32, 32, 3)), rng.random((32, 32, 3))) < 0.2

    def test_small_perturbation_scores_high(self):
        rng = np.random.default_rng(2)
        img = rng.random((32, 32, 3))
        assert ssim(img, img + 0.01) > 0.9

    def test_grayscale_supported(self):
        img = np.random.default_rng(3).random((20, 20))
        assert ssim(img, img) == pytest.approx(1.0)

    def test_tiny_image_fallback(self):
        img = np.random.default_rng(4).random((3, 3, 3))
        assert ssim(img, img) == pytest.approx(1.0)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            ssim(np.zeros((4, 4)), np.zeros((5, 5)))

    @given(st.integers(0, 10_000))
    @settings(max_examples=20, deadline=None)
    def test_symmetry(self, seed):
        rng = np.random.default_rng(seed)
        a = rng.random((16, 16))
        b = rng.random((16, 16))
        assert ssim(a, b) == pytest.approx(ssim(b, a), abs=1e-9)


class TestPopping:
    def test_smooth_sequence_scores_zero(self):
        frames = [np.full((8, 8, 3), 0.1 * i) for i in range(6)]
        assert popping_score(frames) == pytest.approx(0.0, abs=1e-12)

    def test_spike_raises_score(self):
        frames = [np.full((8, 8, 3), 0.1 * i) for i in range(6)]
        spiked = [f.copy() for f in frames]
        spiked[3] += 0.5
        assert popping_score(spiked) > popping_score(frames)

    def test_frame_deltas_length(self):
        frames = [np.zeros((4, 4, 3))] * 5
        assert len(frame_deltas(frames)) == 4

    def test_needs_two_frames(self):
        with pytest.raises(ValueError):
            frame_deltas([np.zeros((4, 4, 3))])

    def test_two_frames_score_zero(self):
        assert popping_score([np.zeros((2, 2)), np.ones((2, 2))]) == 0.0


class TestPly:
    def test_round_trip(self, tmp_path):
        cloud = _tiny_cloud(n=50, sh_coeffs=9)
        path = tmp_path / "scene.ply"
        save_ply(cloud, path)
        back = load_ply(path)
        assert len(back) == 50
        assert back.sh.shape == (50, 9, 3)
        assert np.allclose(back.means, cloud.means, atol=1e-4)
        assert np.allclose(back.scales, cloud.scales, rtol=1e-4)
        assert np.allclose(back.opacities, cloud.opacities, atol=1e-5)
        assert np.allclose(back.sh, cloud.sh, atol=1e-3)
        # Quaternions are normalized on construction; compare up to sign.
        dots = np.abs(np.sum(back.rotations * cloud.rotations, axis=1))
        assert np.allclose(dots, 1.0, atol=1e-4)

    def test_degree_zero_round_trip(self, tmp_path):
        cloud = _tiny_cloud(n=5, sh_coeffs=1)
        path = tmp_path / "dc.ply"
        save_ply(cloud, path)
        back = load_ply(path)
        assert back.sh.shape == (5, 1, 3)

    def test_header_is_3dgs_convention(self, tmp_path):
        cloud = _tiny_cloud(n=3, sh_coeffs=4)
        path = tmp_path / "hdr.ply"
        save_ply(cloud, path)
        header = path.read_bytes().split(b"end_header")[0].decode()
        for prop in ("f_dc_0", "f_rest_8", "opacity", "scale_2", "rot_3"):
            assert f"property float {prop}" in header

    def test_rejects_non_ply(self, tmp_path):
        path = tmp_path / "bad.ply"
        path.write_bytes(b"not a ply at all")
        with pytest.raises(ValueError, match="end_header"):
            load_ply(path)

    def test_rejects_truncated_body(self, tmp_path):
        cloud = _tiny_cloud(n=10)
        path = tmp_path / "trunc.ply"
        save_ply(cloud, path)
        data = path.read_bytes()
        path.write_bytes(data[:-40])
        with pytest.raises(ValueError, match="truncated"):
            load_ply(path)

    def test_rejects_ascii_ply(self, tmp_path):
        path = tmp_path / "ascii.ply"
        path.write_bytes(
            b"ply\nformat ascii 1.0\nelement vertex 0\nend_header\n"
        )
        with pytest.raises(ValueError, match="binary_little_endian"):
            load_ply(path)

    def test_name_defaults_to_stem(self, tmp_path):
        cloud = _tiny_cloud(n=3)
        path = tmp_path / "myscene.ply"
        save_ply(cloud, path)
        assert load_ply(path).name == "myscene"


class TestDensityControl:
    def test_prune_keeps_selected(self):
        cloud = _tiny_cloud(n=20)
        keep = np.zeros(20, dtype=bool)
        keep[:5] = True
        out = prune(cloud, keep)
        assert len(out) == 5
        assert np.allclose(out.means, cloud.means[:5])

    def test_prune_refuses_to_empty_scene(self):
        cloud = _tiny_cloud(n=4)
        with pytest.raises(ValueError):
            prune(cloud, np.zeros(4, dtype=bool))

    def test_split_doubles_selected(self):
        cloud = _tiny_cloud(n=10)
        out = split(cloud, np.array([0, 1]))
        assert len(out) == 12  # 8 kept + 2*2 halves

    def test_split_halves_flank_original(self):
        cloud = _tiny_cloud(n=3)
        original_mean = cloud.means[1].copy()
        out = split(cloud, np.array([1]))
        halves = out.means[-2:]
        midpoint = halves.mean(axis=0)
        assert np.allclose(midpoint, original_mean, atol=1e-9)

    def test_split_shrinks_scales(self):
        cloud = _tiny_cloud(n=3)
        out = split(cloud, np.array([0]), shrink=2.0)
        assert np.allclose(out.scales[-1], cloud.scales[0] / 2.0)

    def test_split_empty_selection_is_noop(self):
        cloud = _tiny_cloud(n=5)
        out = split(cloud, np.array([], dtype=np.int64))
        assert out is cloud

    def test_clone_duplicates(self):
        cloud = _tiny_cloud(n=6)
        out = clone(cloud, np.array([2]))
        assert len(out) == 7
        assert np.allclose(out.means[-1], cloud.means[2])

    def test_contribution_stats_absorb(self):
        stats = ContributionStats.empty(5)
        stats.absorb([(0, 0.5, 1.0), (3, 0.2, 2.0), (0, 0.1, 3.0)])
        stats.absorb(None)
        assert stats.blend_count[0] == 2
        assert stats.blend_count[3] == 1
        assert stats.weight_sum[0] == pytest.approx(0.6)
        assert stats.mean_weight[1] == 0.0

    def test_densify_round_on_real_scene(self):
        cloud = make_workload("room", scale=1 / 1500)
        camera = default_camera_for(cloud, 8, 8)
        stats = collect_stats(cloud, [camera])
        outcome = densify_round(cloud, stats)
        assert len(outcome.cloud) == len(cloud) + outcome.delta
        assert outcome.pruned >= 0
        # The result is a valid cloud: constructor invariants all hold.
        assert outcome.cloud.scales.min() > 0.0

    def test_densify_without_pruning_unseen(self):
        cloud = _tiny_cloud(n=30, seed=5)
        stats = ContributionStats.empty(30)
        stats.blend_count[:10] = 5
        stats.weight_sum[:10] = 2.0
        outcome = densify_round(cloud, stats, DensifyParams(prune_unseen=False))
        assert outcome.pruned == 0

    def test_densify_rejects_mismatched_stats(self):
        cloud = _tiny_cloud(n=10)
        with pytest.raises(ValueError):
            densify_round(cloud, ContributionStats.empty(5))

    def test_params_validation(self):
        with pytest.raises(ValueError):
            DensifyParams(opacity_floor=1.5)
        with pytest.raises(ValueError):
            DensifyParams(split_shrink=0.5)
