"""Property-based tests for the extension modules.

Fuzzes the new data structures with hypothesis: build-strategy
equivalence, serialization round trips, SSIM bounds, and energy-model
additivity.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bvh import (
    BuildParams,
    build_bvh,
    build_two_level,
    load_structure,
    save_structure,
)
from repro.hwsim import EnergyParams, estimate_energy
from repro.hwsim.replay import TimingReport
from repro.render.metrics import ssim
from repro.rt import SceneShading, TraceConfig, Tracer

from tests.conftest import tiny_cloud


@st.composite
def boxes(draw):
    seed = draw(st.integers(0, 100_000))
    n = draw(st.integers(2, 80))
    rng = np.random.default_rng(seed)
    centers = rng.uniform(-5, 5, (n, 3))
    half = rng.uniform(0.01, 0.6, (n, 1))
    return centers - half, centers + half


class TestBuilderProperties:
    @given(boxes(), st.sampled_from(["sah", "median", "lbvh"]),
           st.integers(2, 8))
    @settings(max_examples=25, deadline=None)
    def test_any_strategy_any_width_valid(self, lohi, strategy, width):
        lo, hi = lohi
        bvh = build_bvh(lo, hi, 48, BuildParams(width=width, strategy=strategy))
        bvh.validate()
        assert bvh.n_prims == lo.shape[0]

    @given(boxes())
    @settings(max_examples=15, deadline=None)
    def test_root_box_contains_all_prims(self, lohi):
        lo, hi = lohi
        bvh = build_bvh(lo, hi, 48, BuildParams(strategy="lbvh"))
        root_lo, root_hi = bvh.root_box()
        assert np.all(root_lo <= lo.min(axis=0) + 1e-12)
        assert np.all(root_hi >= hi.max(axis=0) - 1e-12)

    @given(st.integers(0, 10_000), st.sampled_from(["sah", "median", "lbvh"]))
    @settings(max_examples=10, deadline=None)
    def test_strategy_never_changes_the_image(self, seed, strategy):
        cloud = tiny_cloud(n=24, seed=seed)
        shading = SceneShading(cloud)
        ref = Tracer(build_two_level(cloud, "sphere"), shading, TraceConfig(k=8))
        alt = Tracer(
            build_two_level(cloud, "sphere", params=BuildParams(strategy=strategy)),
            shading, TraceConfig(k=8),
        )
        rng = np.random.default_rng(seed)
        center = cloud.means.mean(axis=0)
        o = center + rng.normal(0, 1, 3) * 8.0
        d = cloud.means[rng.integers(0, len(cloud))] - o
        np.testing.assert_array_equal(
            ref.trace_ray(o, d).color, alt.trace_ray(o, d).color)


class TestSerializationProperties:
    @given(st.integers(0, 10_000), st.sampled_from(["sphere", "icosphere"]))
    @settings(max_examples=10, deadline=None)
    def test_round_trip_preserves_layout(self, seed, blas_kind):
        import tempfile
        from pathlib import Path

        cloud = tiny_cloud(n=16, seed=seed)
        structure = build_two_level(cloud, blas_kind)
        with tempfile.TemporaryDirectory() as tmp:
            path = Path(tmp) / "s.npz"
            save_structure(structure, path)
            loaded = load_structure(path)
        assert loaded.total_bytes == structure.total_bytes
        assert np.array_equal(loaded.tlas.node_addr, structure.tlas.node_addr)
        assert np.array_equal(loaded.tlas.prim_order, structure.tlas.prim_order)



class TestMetricProperties:
    @given(st.integers(0, 10_000))
    @settings(max_examples=20, deadline=None)
    def test_ssim_bounded(self, seed):
        rng = np.random.default_rng(seed)
        a = rng.random((12, 12))
        b = rng.random((12, 12))
        score = ssim(a, b)
        assert -1.0 <= score <= 1.0

    @given(st.integers(0, 10_000), st.floats(0.0, 0.2))
    @settings(max_examples=20, deadline=None)
    def test_ssim_decreases_with_noise(self, seed, sigma):
        rng = np.random.default_rng(seed)
        img = rng.random((16, 16))
        noisy = img + rng.normal(0, sigma + 1e-6, img.shape)
        very_noisy = img + rng.normal(0, 5 * (sigma + 1e-6), img.shape)
        assert ssim(img, very_noisy) <= ssim(img, noisy) + 1e-6


class TestEnergyProperties:
    @given(st.integers(0, 5_000), st.integers(0, 500), st.integers(0, 50))
    @settings(max_examples=30, deadline=None)
    def test_energy_additive_in_counters(self, l1, l2, dram):
        a = TimingReport(l1_accesses=l1, l2_accesses=l2, dram_accesses=dram)
        b = TimingReport(l1_accesses=2 * l1, l2_accesses=2 * l2,
                         dram_accesses=2 * dram)
        ea = estimate_energy(a)
        eb = estimate_energy(b)
        assert eb.l1_nj + eb.l2_nj + eb.dram_nj == pytest.approx(
            2 * (ea.l1_nj + ea.l2_nj + ea.dram_nj))

    @given(st.floats(1.0, 1000.0))
    @settings(max_examples=20, deadline=None)
    def test_scaling_all_constants_scales_energy(self, factor):
        report = TimingReport(l1_accesses=100, l2_accesses=20, dram_accesses=5)
        base = estimate_energy(report, params=EnergyParams())
        scaled = estimate_energy(report, params=EnergyParams(
            l1_access_pj=25.0 * factor,
            l2_access_pj=120.0 * factor,
            dram_access_pj=2500.0 * factor,
        ))
        mem_base = base.l1_nj + base.l2_nj + base.dram_nj
        mem_scaled = scaled.l1_nj + scaled.l2_nj + scaled.dram_nj
        assert mem_scaled == pytest.approx(factor * mem_base, rel=1e-9)
