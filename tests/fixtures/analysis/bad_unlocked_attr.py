"""Fixture: lock-discipline, class form.

``add`` establishes that ``self._counts`` is lock-protected; ``reset``
then mutates it without the lock — the shape of the unlocked
``_TABLES_CACHE`` access the tracer shipped with.
"""

import threading


class Registry:
    def __init__(self):
        self._lock = threading.Lock()
        self._counts = {}

    def add(self, name, value):
        with self._lock:
            self._counts[name] = self._counts.get(name, 0) + value

    def reset(self, name):
        self._counts[name] = 0
