"""Fixture: lock-discipline, module form.

A module-global container with a module lock that one writer ignores.
"""

import threading

_CACHE: dict = {}
_LOCK = threading.Lock()


def put(key, value):
    _CACHE[key] = value


def get(key):
    with _LOCK:
        return _CACHE.get(key)
