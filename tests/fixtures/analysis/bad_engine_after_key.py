"""Fixture: engine-before-key (PR 4's cache-aliasing bug).

Cache keys built before ``resolve_engine()`` runs — or built from the
raw requested engine instead of the resolved one — alias ``"auto"``
and the engine it resolves to into different cache entries.
"""

from repro.render.path import resolve_engine


def render_cached(scene, engine, cache):
    key = (scene, engine)
    resolved = resolve_engine(engine, scene)
    return cache.get(key), resolved


def render_resolved_late(scene, engine, cache):
    resolved = resolve_engine(engine, scene)
    key = (scene, engine)
    return cache.get(key), resolved
