"""Fixture: mutable-default + broad-except.

A shared mutable default (cross-request state in a long-lived server)
and a broad except that would swallow WorkerCrashError silently.
"""


def accumulate(sample, sink=[]):
    try:
        sink.append(sample)
    except Exception:
        pass
    return sink
