"""Fixture: cache-key-params.

The memo key folds in ``_ambient_scale`` — ambient module state, not a
declared parameter — so flipping the ambient value serves stale
results. The eval campaign's cache contract: every axis that varies a
result is a parameter and appears in the key.
"""

import threading

_memo: dict = {}
_memo_lock = threading.Lock()
_ambient_scale = 1.0


def expensive(scene, mode):
    return (scene, mode)


def lookup(scene, mode):
    key = (scene, mode, _ambient_scale)
    with _memo_lock:
        if key not in _memo:
            _memo[key] = expensive(scene, mode)
        return _memo[key]
