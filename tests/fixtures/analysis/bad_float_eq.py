"""Fixture: float-eq (lint with ``assume_parity=True``).

A float-literal equality on parity-path code: holds under one engine's
rounding and not the other's.
"""


def weight_is_saturated(weight):
    return weight == 1.0
