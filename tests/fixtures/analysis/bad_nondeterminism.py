"""Fixture: parity-nondeterminism (lint with ``assume_parity=True``).

Wall-clock reads, unseeded RNG draws and set-order iteration: the
three ways Python silently breaks the bit-identical-image contract
while agreeing with itself on the machine it was written on.
"""

import time

import numpy as np


def jitter_samples(rays):
    seed = time.time()
    noise = np.random.rand(len(rays))
    rng = np.random.default_rng()
    order = set(rays)
    for ray in order:
        noise = noise + rng.standard_normal(1)
    return seed, noise
