"""Fixture: non-JSON payloads recorded into the flight ring.

Every value recorded through ``flight.record``/``dump_incident`` lands
verbatim inside JSON checkpoint and incident-bundle documents; the
writer's repr() fallback silently destroys anything json.dumps cannot
encode. Each emission below smuggles one unencodable shape.
"""

from repro.obs import flight


def record_lambda(task_id):
    flight.record("state", "task.start", callback=lambda: task_id)


def record_generator(results):
    flight.record("complete", "task.done", values=(r.id for r in results))


def record_set_comp(workers):
    flight.record("crash", "pool.crash", workers={w.pid for w in workers})


def record_set_literal():
    flight.record("crash", "pool.crash", flags={"requeued", "respawned"})


def record_bytes():
    flight.record("error", "task.error", payload=b"\x00\x01")


def record_set_ctor(keys):
    flight.dump_incident("cache-storm", evicted=set(keys))


def record_open_handle(path):
    flight.record("state", "spool.open", handle=open(path))
