"""Fixture: the blessed patterns — must lint clean (assume_parity).

Identity memo with a weakref liveness guard, branch-exclusive dict
writes, key derived from parameters, mutations under the module lock.
"""

import threading
import weakref

_memo: dict = {}
_memo_lock = threading.Lock()


def remember(obj, value):
    key = id(obj)
    ref = weakref.ref(obj)
    with _memo_lock:
        _memo[key] = (ref, value)


def recall(obj):
    key = id(obj)
    with _memo_lock:
        entry = _memo.get(key)
    if entry is not None and entry[0]() is obj:
        return entry[1]
    return None


def describe(structure):
    out = {"kind": "structure"}
    if structure is None:
        out["nodes"] = 0
    else:
        out["nodes"] = len(structure)
    return out
