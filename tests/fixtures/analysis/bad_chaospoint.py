"""Fixture: chaos-point-registered.

Every shape of unauditable fault injection: a misspelled point name
(silently dead while disarmed, unreachable by any legal schedule), a
computed point name the registry cannot vouch for, and the three ad-hoc
``REPRO_CHAOS`` environment reads that bypass the chaos layer's
counters, once-tokens, and doctor attribution.
"""

import os

from repro import chaos


def probe_misspelled_point():
    return chaos.point("pool.worker.tsak")


def probe_computed_point(name):
    return chaos.point(name)


def adhoc_env_get():
    return os.environ.get("REPRO_CHAOS")


def adhoc_getenv():
    return os.getenv("REPRO_CHAOS_SEED")


def adhoc_env_subscript():
    return os.environ["REPRO_CHAOS_TOKENS"]
