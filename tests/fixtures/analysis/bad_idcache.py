"""Fixture: id-keyed-cache (PR 2's tracer-reuse bug, reconstructed).

A cache keyed by ``id(scene)`` with no liveness guard: once the scene
is garbage collected its id can be recycled by a brand-new scene, and
the cache serves a tracer built over the dead one.
"""


class TracerServer:
    def __init__(self):
        self._tracers = {}

    def get_tracer(self, scene, build):
        key = id(scene)
        hit = self._tracers.get(key)
        if hit is not None:
            return hit
        tracer = build(scene)
        self._tracers[key] = tracer
        return tracer
