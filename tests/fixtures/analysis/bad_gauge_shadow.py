"""Fixture: shadowed-dict-key (PR 6's gauge-over-counter bug).

``snapshot`` writes the same literal key twice into one dict: the
gauge provider silently shadows the counter, exactly how
``ServerMetrics.snapshot()`` lost counters until gauges were
namespaced ``gauge.*``.
"""


def snapshot(metrics):
    out = {}
    out["renders"] = metrics.counter("renders")
    out["renders"] = metrics.gauge("renders")
    return out


def merged_literal():
    return {"tiles": 1, "tiles": 2}
