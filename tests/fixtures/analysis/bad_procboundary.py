"""Fixture: process-boundary.

Lambdas, closures, generator expressions and open handles shipped to
the worker pool: each either fails to pickle or smuggles parent-process
state across the boundary (PR 6's metrics vanished exactly there).
"""


def fan_out(pool, tiles, scene):
    futures = [pool.submit(lambda t: t.render(scene), t) for t in tiles]

    def per_tile(tile):
        return tile.render(scene)

    futures.append(pool.submit(per_tile, tiles[0]))
    pool.map(per_tile, (t for t in tiles))
    pool.submit(read_trace, open("trace.bin", "rb"))
    return futures


def read_trace(handle):
    return handle.read()
