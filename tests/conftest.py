"""Shared fixtures: tiny scenes and structures sized for fast tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.bvh import build_monolithic, build_two_level
from repro.gaussians import GaussianCloud, make_workload

#: Tests run at a much smaller scale than benchmarks.
TEST_SCALE = 1.0 / 2000.0


def tiny_cloud(n: int = 64, seed: int = 0, kappa: float = 3.0) -> GaussianCloud:
    """A small random cloud for unit tests (not one of the workloads)."""
    rng = np.random.default_rng(seed)
    from repro.math3d import quat_random

    return GaussianCloud(
        means=rng.uniform(-4.0, 4.0, size=(n, 3)),
        scales=np.exp(rng.uniform(np.log(0.05), np.log(0.6), size=(n, 3))),
        rotations=quat_random(n, rng),
        opacities=np.clip(rng.beta(1.5, 6.0, size=n), 0.02, 1.0),
        sh=rng.normal(0.0, 0.2, size=(n, 4, 3)),
        kappa=kappa,
        name="tiny",
    )


@pytest.fixture(scope="session")
def small_cloud() -> GaussianCloud:
    return tiny_cloud(n=96, seed=3)


@pytest.fixture(scope="session")
def workload_cloud() -> GaussianCloud:
    return make_workload("room", scale=TEST_SCALE)


@pytest.fixture(scope="session")
def mono_20tri(small_cloud):
    return build_monolithic(small_cloud, "20-tri")


@pytest.fixture(scope="session")
def mono_custom(small_cloud):
    return build_monolithic(small_cloud, "custom")


@pytest.fixture(scope="session")
def tlas_sphere(small_cloud):
    return build_two_level(small_cloud, "sphere")


@pytest.fixture(scope="session")
def tlas_icosphere(small_cloud):
    return build_two_level(small_cloud, "icosphere", 0)
