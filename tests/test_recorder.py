"""Tests for the fetch-trace recorder."""

from __future__ import annotations

import pytest

from repro.rt import (
    FETCH_INTERNAL,
    FETCH_LEAF,
    PRIM_SPHERE,
    PRIM_TRI,
    RayTrace,
    RoundTrace,
)


class TestRoundTrace:
    def test_event_roundtrip(self):
        rt = RoundTrace()
        rt.fetch(1000, 208, FETCH_INTERNAL, box_tests=6,
                 prefetch=[(2000, 144), (3000, 208)])
        rt.fetch(2000, 144, FETCH_LEAF, prim_tests=4, prim_kind=PRIM_TRI)
        events = list(rt.iter_events())
        assert events[0] == (1000, 208, FETCH_INTERNAL, 6, 0, 0, [(2000, 144), (3000, 208)])
        assert events[1] == (2000, 144, FETCH_LEAF, 0, 4, PRIM_TRI, [])
        assert rt.n_fetches == 2

    def test_no_prefetch_is_compact(self):
        rt = RoundTrace()
        rt.fetch(0, 128, FETCH_LEAF, prim_tests=1, prim_kind=PRIM_SPHERE)
        assert len(rt.stream) == 7

    def test_counters_default_zero(self):
        rt = RoundTrace()
        assert rt.anyhit_calls == 0
        assert rt.false_positives == 0
        assert rt.blended == 0


class TestRayTrace:
    def test_unique_vs_total(self):
        trace = RayTrace()
        trace.begin_round()
        for addr in (10, 20, 10):
            trace.note_fetch(addr, FETCH_INTERNAL)
        trace.note_fetch(30, FETCH_LEAF)
        trace.note_fetch(30, FETCH_LEAF)
        assert trace.total_internal == 3
        assert len(trace.unique_internal) == 2
        assert trace.total_leaf == 2
        assert len(trace.unique_leaf) == 1
        assert trace.total_fetches == 5
        assert trace.unique_fetches == 3

    def test_rounds_accumulate(self):
        trace = RayTrace()
        r1 = trace.begin_round()
        r2 = trace.begin_round()
        assert trace.n_rounds == 2
        assert trace.rounds == [r1, r2]

    def test_label_default_primary(self):
        assert RayTrace().label == "primary"
        assert RayTrace(label="secondary").label == "secondary"
