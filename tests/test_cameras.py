"""Tests for the non-pinhole camera models."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.render.camera import PinholeCamera
from repro.render.cameras import (
    DistortedPinholeCamera,
    EquirectangularCamera,
    FisheyeCamera,
    OrthographicCamera,
    rasterizer_fisheye_error,
)

EYE = np.array([0.0, -5.0, 0.0])
TARGET = np.zeros(3)
UP = np.array([0.0, 0.0, 1.0])


def _forward(camera):
    r, u, f = camera.basis
    return f


class TestFisheyeCamera:
    def test_ray_count_matches_resolution(self):
        cam = FisheyeCamera(EYE, TARGET, UP, 9, 7, fov=np.pi)
        assert len(cam.generate_rays()) == 63
        assert cam.n_pixels == 63

    def test_directions_are_unit(self):
        cam = FisheyeCamera(EYE, TARGET, UP, 8, 8, fov=np.pi)
        d = cam.generate_rays().directions
        assert np.allclose(np.linalg.norm(d, axis=1), 1.0)

    def test_center_ray_points_forward(self):
        cam = FisheyeCamera(EYE, TARGET, UP, 9, 9, fov=np.pi)
        rays = cam.generate_rays()
        center = rays.directions[4 * 9 + 4]
        assert np.allclose(center, _forward(cam), atol=1e-6)

    def test_fov_sets_edge_angle(self):
        # A pixel at the image-circle edge must sit fov/2 from the axis.
        fov = np.deg2rad(120)
        cam = FisheyeCamera(EYE, TARGET, UP, 201, 1, fov=fov)
        rays = cam.generate_rays()
        f = _forward(cam)
        # x of the leftmost pixel center: (0.5/201)*2-1 ~ -0.995
        edge = rays.directions[0]
        angle = np.arccos(np.clip(edge @ f, -1, 1))
        assert angle == pytest.approx(0.995 * fov / 2.0, rel=1e-3)

    def test_valid_mask_is_image_circle(self):
        cam = FisheyeCamera(EYE, TARGET, UP, 16, 16, fov=np.pi)
        mask = cam.valid_mask()
        assert mask.shape == (16, 16)
        assert mask[8, 8]  # center valid
        assert not mask[0, 0]  # corner outside the circle

    def test_over_180_degree_fov_supported(self):
        cam = FisheyeCamera(EYE, TARGET, UP, 64, 64, fov=np.deg2rad(220))
        rays = cam.generate_rays()
        f = _forward(cam)
        cosines = rays.directions @ f
        assert cosines.min() < 0.0  # some rays point behind the image plane

    def test_rejects_bad_fov(self):
        with pytest.raises(ValueError):
            FisheyeCamera(EYE, TARGET, UP, 8, 8, fov=0.0)
        with pytest.raises(ValueError):
            FisheyeCamera(EYE, TARGET, UP, 8, 8, fov=7.0)

    def test_rejects_degenerate_pose(self):
        with pytest.raises(ValueError):
            FisheyeCamera(EYE, EYE, UP, 8, 8, fov=np.pi)


class TestEquirectangularCamera:
    def test_covers_full_sphere(self):
        cam = EquirectangularCamera(EYE, TARGET, UP, 64, 32)
        d = cam.generate_rays().directions
        # Directions should span all octants of the sphere.
        for axis in range(3):
            assert d[:, axis].min() < -0.5
            assert d[:, axis].max() > 0.5

    def test_center_pixel_faces_forward(self):
        cam = EquirectangularCamera(EYE, TARGET, UP, 63, 31)
        rays = cam.generate_rays()
        center = rays.directions[15 * 63 + 31]
        assert np.allclose(center, _forward(cam), atol=0.05)

    def test_directions_unit_norm(self):
        cam = EquirectangularCamera(EYE, TARGET, UP, 16, 8)
        d = cam.generate_rays().directions
        assert np.allclose(np.linalg.norm(d, axis=1), 1.0)


class TestDistortedPinholeCamera:
    def test_zero_distortion_matches_pinhole(self):
        fov = np.deg2rad(60)
        distorted = DistortedPinholeCamera(EYE, TARGET, UP, 8, 8, fov_y=fov)
        pinhole = PinholeCamera(EYE, TARGET, UP, 8, 8, fov_y=fov)
        assert np.allclose(
            distorted.generate_rays().directions,
            pinhole.generate_rays().directions,
            atol=1e-12,
        )

    def test_barrel_distortion_pulls_edges_inward(self):
        fov = np.deg2rad(60)
        base = PinholeCamera(EYE, TARGET, UP, 33, 33, fov_y=fov)
        barrel = DistortedPinholeCamera(EYE, TARGET, UP, 33, 33, fov_y=fov, k1=-0.3)
        f = _forward(barrel)
        edge = 16 * 33  # leftmost pixel of the middle row
        angle_base = np.arccos(
            np.clip(base.generate_rays().directions[edge] @ f, -1, 1))
        angle_barrel = np.arccos(
            np.clip(barrel.generate_rays().directions[edge] @ f, -1, 1))
        assert angle_barrel < angle_base

    def test_tangential_distortion_breaks_symmetry(self):
        cam = DistortedPinholeCamera(EYE, TARGET, UP, 9, 9,
                                     fov_y=np.deg2rad(60), p1=0.05)
        d = cam.generate_rays().directions.reshape(9, 9, 3)
        assert not np.allclose(d[0, 4], d[8, 4] * np.array([1, 1, 1]))

    def test_distort_is_identity_without_coefficients(self):
        cam = DistortedPinholeCamera(EYE, TARGET, UP, 4, 4)
        x = np.linspace(-1, 1, 5)
        y = np.linspace(-1, 1, 5)
        xd, yd = cam.distort(x, y)
        assert np.allclose(xd, x)
        assert np.allclose(yd, y)


class TestOrthographicCamera:
    def test_all_directions_parallel(self):
        cam = OrthographicCamera(EYE, TARGET, UP, 8, 8, half_extent=2.0)
        d = cam.generate_rays().directions
        assert np.allclose(d, d[0])

    def test_origins_span_extent(self):
        cam = OrthographicCamera(EYE, TARGET, UP, 64, 64, half_extent=3.0)
        o = cam.generate_rays().origins
        right, up, _ = cam.basis
        spans = (o - EYE) @ up
        assert spans.max() == pytest.approx(3.0, rel=0.05)
        assert spans.min() == pytest.approx(-3.0, rel=0.05)

    def test_rejects_nonpositive_extent(self):
        with pytest.raises(ValueError):
            OrthographicCamera(EYE, TARGET, UP, 8, 8, half_extent=0.0)


class TestLookAtProtocol:
    @pytest.mark.parametrize("ctor", [
        lambda: FisheyeCamera(EYE, TARGET, UP, 6, 4, fov=np.pi),
        lambda: EquirectangularCamera(EYE, TARGET, UP, 6, 4),
        lambda: DistortedPinholeCamera(EYE, TARGET, UP, 6, 4),
        lambda: OrthographicCamera(EYE, TARGET, UP, 6, 4),
    ])
    def test_renderer_camera_protocol(self, ctor):
        cam = ctor()
        assert cam.width == 6 and cam.height == 4
        assert cam.n_pixels == 24
        assert len(cam.generate_rays()) == 24

    def test_with_resolution_preserves_pose(self):
        cam = FisheyeCamera(EYE, TARGET, UP, 6, 4, fov=np.pi)
        bigger = cam.with_resolution(12, 8)
        assert bigger.width == 12 and bigger.height == 8
        assert np.allclose(bigger.position, cam.position)
        assert bigger.fov == cam.fov

    def test_rejects_bad_resolution(self):
        with pytest.raises(ValueError):
            EquirectangularCamera(EYE, TARGET, UP, 0, 4)


class TestFisheyeApproximationError:
    def test_error_grows_with_fov(self):
        errors = [rasterizer_fisheye_error(np.deg2rad(d)) for d in (60, 120, 170)]
        assert errors[0] < errors[1] < errors[2]

    def test_small_fov_is_nearly_exact(self):
        assert rasterizer_fisheye_error(np.deg2rad(20)) < 1e-3

    def test_rejects_bad_fov(self):
        with pytest.raises(ValueError):
            rasterizer_fisheye_error(0.0)

    @given(st.floats(min_value=0.2, max_value=3.0))
    @settings(max_examples=25, deadline=None)
    def test_error_is_nonnegative(self, fov):
        assert rasterizer_fisheye_error(fov) >= 0.0
