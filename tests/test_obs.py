"""The observability layer: metrics registry, tracing, worker ride-back.

Covers the contracts the rest of the stack leans on: exact counter
totals under thread contention (sharded fast path), mergeable bucketed
histograms, monotonic snapshots, Chrome-tracing-valid span files, and —
the regression this subsystem exists for — worker-process metrics
(packet fallbacks, per-tile timings) reaching the parent registry with
task results instead of dying with the worker.
"""

from __future__ import annotations

import json
import threading
import time
import warnings

import pytest

from repro.obs import (
    Histogram,
    MetricsRegistry,
    get_registry,
    load_snapshot,
    span,
    start_tracing,
    stop_tracing,
    validate_trace_file,
    write_snapshot,
)

SCALE = 1.0 / 10000.0


# -- module-level task functions (picklable under any start method) ------

def _bump_counters(n):
    """Worker-side: add to a counter and a histogram, return n."""
    registry = get_registry()
    registry.add("test.worker_bumps", n)
    registry.observe("test.worker_hist", 0.25)
    return n


def _fallback_in_worker(scale):
    """Worker-side: force an explicit packet-engine degrade."""
    from repro.eval.harness import build_structure_for
    from repro.gaussians import make_workload
    from repro.render import GaussianRayTracer
    from repro.rt import TraceConfig

    cloud = make_workload("train", scale=scale)
    structure = build_structure_for(cloud, "tlas+sphere")
    config = TraceConfig(k=4, checkpointing=True)  # packet can't checkpoint
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", RuntimeWarning)
        GaussianRayTracer(cloud, structure, config, engine="packet")
    from repro.rt.packet import packet_fallback_count

    return packet_fallback_count()


# -- histograms ----------------------------------------------------------

class TestHistogram:
    def test_observe_count_sum_min_max(self):
        hist = Histogram()
        for value in (0.001, 0.002, 0.004):
            hist.observe(value)
        assert hist.count == 3
        assert hist.sum == pytest.approx(0.007)
        assert hist.min == pytest.approx(0.001)
        assert hist.max == pytest.approx(0.004)

    def test_percentiles_ordered_and_clamped(self):
        hist = Histogram()
        for i in range(1, 101):
            hist.observe(i / 1000.0)  # 1ms .. 100ms
        p = hist.percentiles()
        assert p["p50"] <= p["p95"] <= p["p99"]
        assert hist.min <= p["p50"] and p["p99"] <= hist.max

    def test_empty_percentiles_are_zero(self):
        assert Histogram().percentiles() == {"p50": 0.0, "p95": 0.0,
                                             "p99": 0.0}

    def test_merge_equals_combined_observe(self):
        a, b, c = Histogram(), Histogram(), Histogram()
        for i in range(50):
            a.observe(i / 100.0)
            c.observe(i / 100.0)
        for i in range(50, 100):
            b.observe(i / 100.0)
            c.observe(i / 100.0)
        a.merge(b)
        assert a.count == c.count
        assert a.sum == pytest.approx(c.sum)
        assert a.percentiles() == c.percentiles()

    def test_merge_accepts_state_dict(self):
        """Cross-process merge: the wire format is the state() dict."""
        a, b = Histogram(), Histogram()
        b.observe(0.5)
        a.merge(b.state())
        assert a.count == 1
        assert a.max == pytest.approx(0.5)


# -- the registry under contention ---------------------------------------

class TestRegistryConcurrency:
    def test_exact_totals_under_thread_hammer(self):
        registry = MetricsRegistry()
        threads, per_thread = 8, 10_000

        def hammer():
            for _ in range(per_thread):
                registry.add("hammer.count")
                registry.observe("hammer.hist", 0.001)

        workers = [threading.Thread(target=hammer) for _ in range(threads)]
        for t in workers:
            t.start()
        for t in workers:
            t.join()
        assert registry.counter_value("hammer.count") == threads * per_thread
        assert registry.histogram("hammer.hist").count == threads * per_thread

    def test_snapshots_monotonic_while_hammered(self):
        """Counters read mid-hammer never decrease between snapshots."""
        registry = MetricsRegistry()
        stop = threading.Event()

        def hammer():
            while not stop.is_set():
                registry.add("mono.count")

        workers = [threading.Thread(target=hammer) for _ in range(4)]
        for t in workers:
            t.start()
        try:
            last = 0
            for _ in range(200):
                value = registry.counter_value("mono.count")
                assert value >= last
                last = value
        finally:
            stop.set()
            for t in workers:
                t.join()
        assert registry.counter_value("mono.count") >= last

    def test_collect_reset_then_merge_roundtrip(self):
        source, sink = MetricsRegistry(), MetricsRegistry()
        source.add("rt.count", 3)
        source.observe("rt.hist", 0.5)
        delta = source.collect(reset=True)
        sink.merge(delta)
        assert sink.counter_value("rt.count") == 3
        assert sink.histogram("rt.hist").count == 1
        # Reset really cleared the source; a second collect is empty.
        assert source.collect().get("counters", {}) in ({}, {"rt.count": 0})

    def test_merge_ignores_unknown_keys(self):
        """Worker deltas carry extra keys (trace_events) — harmless."""
        registry = MetricsRegistry()
        registry.merge({"counters": {"x": 1}, "trace_events": [{"ph": "X"}]})
        assert registry.counter_value("x") == 1


# -- ServerMetrics facade (ported + the shadowing regression) ------------

class TestServerMetrics:
    def _metrics(self):
        from repro.serve import ServerMetrics

        return ServerMetrics()

    def test_counters_via_count_and_attributes(self):
        metrics = self._metrics()
        metrics.count("requests")
        metrics.count("requests")
        metrics.count("rendered")
        assert metrics.requests == 2
        assert metrics.rendered == 1
        assert metrics.rejected == 0
        snapshot = metrics.snapshot()
        assert snapshot["requests"] == 2
        assert snapshot["frame_hit_rate"] == 0.0

    def test_unknown_attribute_raises(self):
        with pytest.raises(AttributeError):
            self._metrics().not_a_metric

    def test_latency_percentiles_in_snapshot(self):
        metrics = self._metrics()
        for ms in (1, 2, 3, 50):
            metrics.observe("latency", ms / 1000.0)
        snapshot = metrics.snapshot()
        assert snapshot["latency_p50"] <= snapshot["latency_p95"]
        assert snapshot["latency_p99"] <= 0.05 + 1e-9

    def test_gauge_cannot_shadow_counter(self):
        """Regression: a gauge provider key equal to a counter name used
        to overwrite the counter in snapshot(); now it lands under the
        gauge. namespace and both survive."""
        metrics = self._metrics()
        metrics.count("rejected")
        metrics.gauges = lambda: {"rejected": 99, "queue_depth": 7}
        snapshot = metrics.snapshot()
        assert snapshot["rejected"] == 1
        assert snapshot["gauge.rejected"] == 99
        assert snapshot["gauge.queue_depth"] == 7


# -- worker ride-back ----------------------------------------------------

class TestWorkerDeltaRideBack:
    def test_call_task_metrics_reach_parent(self):
        from repro.pool import WorkerPool

        registry = get_registry()
        before = registry.counter_value("test.worker_bumps")
        with WorkerPool(workers=2, start_method="fork") as pool:
            results = [pool.submit(_bump_counters, 5).result(timeout=60)
                       for _ in range(4)]
        assert results == [5, 5, 5, 5]
        assert registry.counter_value("test.worker_bumps") == before + 20
        hist = registry.histogram("test.worker_hist")
        assert hist is not None and hist.count >= 4
        # The pool also times every remote call.
        assert registry.histogram("worker.call_seconds").count >= 4

    def test_worker_packet_fallback_reaches_parent(self):
        """Satellite regression: a packet fallback that fires *inside a
        worker process* must show up in the parent registry (the legacy
        in-process global provably still misses it)."""
        from repro.pool import WorkerPool
        from repro.rt.packet import packet_fallback_count, reset_packet_fallbacks

        reset_packet_fallbacks()
        registry = get_registry()
        before = registry.counter_value("rt.packet_fallbacks")
        with WorkerPool(workers=2, start_method="fork") as pool:
            remote = pool.submit(_fallback_in_worker, SCALE).result(timeout=60)
        assert remote >= 1  # the worker really did degrade
        assert packet_fallback_count() == 0  # ...invisible to the old global
        assert registry.counter_value("rt.packet_fallbacks") - before >= 1

    def test_pooled_tile_render_ships_tile_timings(self):
        from repro.eval.harness import build_structure_for
        from repro.gaussians import make_workload
        from repro.render import default_camera_for
        from repro.rt import TraceConfig
        from repro.serve.tiles import TileScheduler

        registry = get_registry()
        hist = registry.histogram("worker.tile_seconds")
        before = hist.count if hist is not None else 0
        cloud = make_workload("train", scale=SCALE)
        structure = build_structure_for(cloud, "tlas+sphere")
        camera = default_camera_for(cloud, 12, 12)
        with TileScheduler(tile_size=(6, 6), workers=2) as scheduler:
            result = scheduler.render(cloud, structure, TraceConfig(k=4),
                                      camera)
        assert result.image.shape == (12, 12, 3)
        assert registry.histogram("worker.tile_seconds").count >= before + 4


# -- tracing -------------------------------------------------------------

class TestTracing:
    def test_span_noop_when_tracing_off(self):
        with span("off.region", detail=1):
            pass  # must not raise, allocate a sink, or write anywhere

    def test_trace_file_roundtrip(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        start_tracing(str(path))
        try:
            with span("test.outer", scene="train"):
                with span("test.inner"):
                    time.sleep(0.001)
        finally:
            stop_tracing()
        report = validate_trace_file(str(path))
        assert report["errors"] == []
        assert report["events"] == 2
        assert {"test.outer", "test.inner"} <= report["names"]
        events = [json.loads(line) for line in
                  path.read_text().splitlines()]
        outer = next(e for e in events if e["name"] == "test.outer")
        assert outer["ph"] == "X" and outer["dur"] >= 0
        assert outer["args"]["scene"] == "train"

    def test_validate_flags_bad_events(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"name": "x", "ph": "X", "ts": 1}\nnot json\n')
        report = validate_trace_file(str(path))
        assert report["errors"]  # missing pid/tid/dur + parse failure


# -- snapshots and the stats CLI -----------------------------------------

class TestSnapshotAndCli:
    def test_write_load_format(self, tmp_path):
        registry = MetricsRegistry()
        registry.add("cli.count", 2)
        registry.observe("cli.hist", 0.125)
        path = tmp_path / "stats.json"
        write_snapshot(str(path), registry=registry)
        document = load_snapshot(str(path))
        assert document["snapshot"]["counters"]["cli.count"] == 2
        assert document["snapshot"]["histograms"]["cli.hist"]["count"] == 1

    def test_cli_stats_pretty_and_json(self, tmp_path, capsys):
        from repro.cli import main

        registry = MetricsRegistry()
        registry.add("cli.count", 3)
        path = tmp_path / "stats.json"
        write_snapshot(str(path), registry=registry)
        assert main(["stats", str(path)]) == 0
        out = capsys.readouterr().out
        assert "cli.count" in out and "3" in out
        assert main(["stats", str(path), "--json"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["snapshot"]["counters"]["cli.count"] == 3

    def test_cli_stats_missing_file_fails_cleanly(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["stats", str(tmp_path / "nope.json")]) == 2
        assert "cannot read snapshot" in capsys.readouterr().err
