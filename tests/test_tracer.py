"""Tracer correctness: the core invariants of the reproduction.

The heavyweight invariants here are exactly the ones the paper relies on:

1. every acceleration structure renders the same scene (bit-identical
   within a primitive family, high-PSNR across families);
2. GRTX-HW checkpoint & replay is *lossless*: baseline multi-round and
   checkpointed multi-round produce bit-identical images;
3. single-round and multi-round tracing agree;
4. checkpointing strictly reduces re-traversal (the total/unique node
   visit gap of Figure 7).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bvh import build_monolithic, build_two_level
from repro.gaussians import build_inverse_covariance, gaussian_alpha_along_ray
from repro.render import GaussianRayTracer, default_camera_for, psnr
from repro.rt import RayTrace, SceneShading, TraceConfig, Tracer

from tests.conftest import tiny_cloud


def render_image(cloud, structure, config, res=10):
    camera = default_camera_for(cloud, res, res)
    return GaussianRayTracer(cloud, structure, config).render(camera, keep_traces=False)


@pytest.fixture(scope="module")
def cloud():
    return tiny_cloud(n=160, seed=11)


@pytest.fixture(scope="module")
def structures(cloud):
    return {
        "mono-20tri": build_monolithic(cloud, "20-tri"),
        "mono-80tri": build_monolithic(cloud, "80-tri"),
        "mono-custom": build_monolithic(cloud, "custom"),
        "tlas-sphere": build_two_level(cloud, "sphere"),
        "tlas-20tri": build_two_level(cloud, "icosphere", 0),
        "tlas-80tri": build_two_level(cloud, "icosphere", 1),
    }


class TestStructureEquivalence:
    def test_exact_primitives_bit_identical(self, cloud, structures):
        """Custom-ellipsoid and unit-sphere paths evaluate the same exact
        intersection, so their images must match to the last bit."""
        cfg = TraceConfig(k=8)
        a = render_image(cloud, structures["mono-custom"], cfg).image
        b = render_image(cloud, structures["tlas-sphere"], cfg).image
        np.testing.assert_array_equal(a, b)

    def test_same_proxy_shape_bit_identical(self, cloud, structures):
        """A 20-tri proxy reports the same entry hits whether its
        triangles live in a monolithic BVH or a shared BLAS."""
        cfg = TraceConfig(k=8)
        a = render_image(cloud, structures["mono-20tri"], cfg).image
        b = render_image(cloud, structures["tlas-20tri"], cfg).image
        np.testing.assert_array_equal(a, b)

    def test_cross_family_quality_matches(self, cloud, structures):
        """Across proxy families the sort keys differ slightly (proxy
        entry vs exact ellipsoid entry), but rendering quality must be
        equivalent — the paper's premise for comparing them at all."""
        cfg = TraceConfig(k=8)
        ref = render_image(cloud, structures["tlas-sphere"], cfg).image
        for name in ("mono-20tri", "mono-80tri", "tlas-20tri", "tlas-80tri"):
            img = render_image(cloud, structures[name], cfg).image
            assert psnr(img, ref) > 24.0, name

    def test_80tri_closer_to_exact_than_20tri(self, cloud, structures):
        """Finer proxies approximate the ellipsoid entry better, so the
        80-tri image should be at least as close to the exact-primitive
        image as the 20-tri one (fewer false positives, tighter entry)."""
        cfg = TraceConfig(k=8)
        ref = render_image(cloud, structures["tlas-sphere"], cfg).image
        p20 = psnr(render_image(cloud, structures["mono-20tri"], cfg).image, ref)
        p80 = psnr(render_image(cloud, structures["mono-80tri"], cfg).image, ref)
        assert p80 >= p20 - 1.0


class TestCheckpointReplay:
    @pytest.mark.parametrize("name", [
        "mono-20tri", "mono-custom", "tlas-sphere", "tlas-20tri",
    ])
    def test_hw_checkpointing_lossless(self, cloud, structures, name):
        """The headline correctness claim of GRTX-HW: resuming from
        checkpoints must be invisible in the output."""
        base = render_image(cloud, structures[name], TraceConfig(k=4)).image
        hw = render_image(cloud, structures[name], TraceConfig(k=4, checkpointing=True)).image
        np.testing.assert_array_equal(base, hw)

    def test_hw_lossless_across_k(self, cloud, structures):
        for k in (1, 2, 3, 8, 32):
            base = render_image(cloud, structures["tlas-sphere"], TraceConfig(k=k)).image
            hw = render_image(
                cloud, structures["tlas-sphere"], TraceConfig(k=k, checkpointing=True)
            ).image
            np.testing.assert_array_equal(base, hw)

    def test_checkpointing_reduces_total_visits(self, cloud, structures):
        """Figure 7 / Figure 14: replay eliminates redundant re-traversal."""
        base = render_image(cloud, structures["mono-20tri"], TraceConfig(k=4))
        hw = render_image(cloud, structures["mono-20tri"], TraceConfig(k=4, checkpointing=True))
        assert hw.stats.total_visits < base.stats.total_visits
        # Unique visits are a property of the scene+rays, not the policy.
        assert hw.stats.unique_visits == pytest.approx(base.stats.unique_visits, rel=0.05)

    def test_checkpointing_never_restarts_from_root(self, cloud, structures):
        """In replay rounds the root must not be re-fetched unless it was
        itself checkpointed: redundancy ratio must drop toward 1."""
        base = render_image(cloud, structures["tlas-sphere"], TraceConfig(k=2))
        hw = render_image(cloud, structures["tlas-sphere"], TraceConfig(k=2, checkpointing=True))
        assert hw.stats.redundancy < base.stats.redundancy

    def test_eviction_buffer_used(self, cloud, structures):
        hw = render_image(cloud, structures["tlas-sphere"], TraceConfig(k=2, checkpointing=True))
        assert hw.stats.evictions_written > 0
        assert hw.stats.evict_high_water > 0
        assert hw.stats.ckpt_high_water > 0


class TestRoundModes:
    def test_single_vs_multi_round_identical(self, cloud, structures):
        multi = render_image(cloud, structures["tlas-sphere"], TraceConfig(k=8)).image
        single = render_image(cloud, structures["tlas-sphere"], TraceConfig(mode="singleround")).image
        np.testing.assert_array_equal(multi, single)

    def test_k_does_not_change_image(self, cloud, structures):
        imgs = [
            render_image(cloud, structures["tlas-sphere"], TraceConfig(k=k)).image
            for k in (2, 8, 64)
        ]
        np.testing.assert_array_equal(imgs[0], imgs[1])
        np.testing.assert_array_equal(imgs[1], imgs[2])

    def test_smaller_k_means_more_rounds(self, cloud, structures):
        r2 = render_image(cloud, structures["tlas-sphere"], TraceConfig(k=2))
        r32 = render_image(cloud, structures["tlas-sphere"], TraceConfig(k=32))
        assert r2.stats.rounds_total > r32.stats.rounds_total

    def test_singleround_rejects_checkpointing(self):
        with pytest.raises(ValueError):
            TraceConfig(mode="singleround", checkpointing=True)


class TestTracerUnit:
    def test_miss_ray_returns_background(self, cloud, structures):
        shading = SceneShading(cloud)
        tracer = Tracer(structures["tlas-sphere"], shading, TraceConfig(k=8))
        outcome = tracer.trace_ray(np.array([500.0, 0.0, 0.0]), np.array([1.0, 0.0, 0.0]))
        np.testing.assert_array_equal(outcome.color, np.zeros(3))
        assert outcome.transmittance == 1.0
        assert outcome.blended == 0

    def test_single_gaussian_alpha_blend(self):
        """One isotropic Gaussian dead ahead: color must equal
        alpha * sh_color with alpha = opacity (ray through the mean)."""
        cloud = tiny_cloud(n=1, seed=5)
        cloud.means[0] = [0.0, 0.0, 0.0]
        cloud.scales[0] = [0.3, 0.3, 0.3]
        cloud.rotations[0] = [1.0, 0.0, 0.0, 0.0]
        structure = build_two_level(cloud, "sphere")
        shading = SceneShading(cloud)
        tracer = Tracer(structure, shading, TraceConfig(k=8))
        origin = np.array([-5.0, 0.0, 0.0])
        direction = np.array([1.0, 0.0, 0.0])
        outcome = tracer.trace_ray(origin, direction)
        alpha = min(cloud.opacities[0], 0.999)
        expected = alpha * shading.colors(np.array([0]), direction)[0]
        np.testing.assert_allclose(outcome.color, expected, rtol=1e-12)

    def test_blend_depth_order(self):
        """Two Gaussians on one ray must blend front-to-back."""
        cloud = tiny_cloud(n=2, seed=6)
        cloud.means[0] = [2.0, 0.0, 0.0]
        cloud.means[1] = [-2.0, 0.0, 0.0]
        cloud.scales[:] = 0.3
        cloud.rotations[:] = [1.0, 0.0, 0.0, 0.0]
        cloud.opacities[:] = [0.6, 0.9]
        structure = build_two_level(cloud, "sphere")
        shading = SceneShading(cloud)
        tracer = Tracer(structure, shading, TraceConfig(k=8))
        direction = np.array([1.0, 0.0, 0.0])
        outcome = tracer.trace_ray(np.array([-6.0, 0.0, 0.0]), direction)
        colors = shading.colors(np.array([1, 0]), direction)
        a1 = min(0.9, 0.999)
        a0 = min(0.6, 0.999)
        expected = a1 * colors[0] + (1 - a1) * a0 * colors[1]
        np.testing.assert_allclose(outcome.color, expected, rtol=1e-9)

    def test_t_clip_excludes_far_gaussians(self):
        cloud = tiny_cloud(n=2, seed=7)
        cloud.means[0] = [2.0, 0.0, 0.0]
        cloud.means[1] = [8.0, 0.0, 0.0]
        cloud.scales[:] = 0.3
        cloud.rotations[:] = [1.0, 0.0, 0.0, 0.0]
        structure = build_two_level(cloud, "sphere")
        tracer = Tracer(structure, SceneShading(cloud), TraceConfig(k=8))
        origin = np.array([-4.0, 0.0, 0.0])
        direction = np.array([1.0, 0.0, 0.0])
        full = tracer.trace_ray(origin, direction)
        clipped = tracer.trace_ray(origin, direction, t_clip=8.0)
        assert clipped.blended == 1
        assert full.blended == 2

    def test_ert_terminates(self):
        """A wall of opaque Gaussians must trigger early ray termination
        and leave the far ones unblended."""
        cloud = tiny_cloud(n=24, seed=8)
        cloud.means[:] = 0.0
        cloud.means[:, 0] = np.linspace(1.0, 24.0, 24)
        cloud.scales[:] = 0.4
        cloud.rotations[:] = [1.0, 0.0, 0.0, 0.0]
        cloud.opacities[:] = 0.9
        structure = build_two_level(cloud, "sphere")
        tracer = Tracer(structure, SceneShading(cloud), TraceConfig(k=4))
        outcome = tracer.trace_ray(np.array([-3.0, 0.0, 0.0]), np.array([1.0, 0.0, 0.0]))
        assert outcome.terminated_early
        assert outcome.blended < 24
        assert outcome.transmittance < 0.01

    def test_trace_records_rounds(self, cloud, structures):
        shading = SceneShading(cloud)
        tracer = Tracer(structures["tlas-sphere"], shading, TraceConfig(k=2))
        trace = RayTrace()
        center = cloud.means.mean(axis=0)
        origin = center + np.array([0.0, 0.0, 20.0])
        outcome = tracer.trace_ray(origin, center - origin, trace)
        assert trace.n_rounds == outcome.rounds
        assert trace.total_fetches >= trace.unique_fetches > 0


class TestShadingKernel:
    def test_evaluate_hit_consistent_with_reference_alpha(self):
        """The object-space alpha must match the covariance-space formula
        of Section II-B (gaussian_alpha_along_ray)."""
        cloud = tiny_cloud(n=32, seed=9)
        shading = SceneShading(cloud)
        inv_cov = build_inverse_covariance(cloud)
        rng = np.random.default_rng(10)
        hits = 0
        for gid in range(32):
            origin = cloud.means[gid] + rng.uniform(2, 4) * np.array([1.0, 0.2, -0.1])
            direction = cloud.means[gid] - origin + rng.normal(0, 0.05, 3)
            result = shading.evaluate_hit(gid, origin, direction)
            if result is None:
                continue
            hits += 1
            _, alpha = result
            ref_alpha, _ = gaussian_alpha_along_ray(
                inv_cov[gid : gid + 1], cloud.means[gid : gid + 1],
                cloud.opacities[gid : gid + 1], origin[None], direction[None],
            )
            np.testing.assert_allclose(alpha, min(ref_alpha[0], 0.999), rtol=1e-9)
        assert hits > 20

    def test_evaluate_hit_entry_on_ellipsoid_surface(self):
        cloud = tiny_cloud(n=16, seed=12)
        shading = SceneShading(cloud)
        for gid in range(16):
            origin = cloud.means[gid] + np.array([3.0, 0.1, 0.05])
            direction = cloud.means[gid] - origin
            result = shading.evaluate_hit(gid, origin, direction)
            if result is None:
                continue
            t_entry, _ = result
            point = origin + t_entry * direction
            obj = shading.w2o_linear[gid] @ point + shading.w2o_offset[gid]
            assert np.linalg.norm(obj) == pytest.approx(1.0, abs=1e-9)

    def test_miss_returns_none(self):
        cloud = tiny_cloud(n=1, seed=13)
        cloud.means[0] = [0.0, 0.0, 0.0]
        cloud.scales[0] = [0.1, 0.1, 0.1]
        shading = SceneShading(cloud)
        assert shading.evaluate_hit(0, np.array([-5.0, 3.0, 0.0]),
                                    np.array([1.0, 0.0, 0.0])) is None

    def test_behind_origin_returns_none(self):
        cloud = tiny_cloud(n=1, seed=14)
        cloud.means[0] = [0.0, 0.0, 0.0]
        cloud.scales[0] = [0.2, 0.2, 0.2]
        cloud.rotations[0] = [1.0, 0.0, 0.0, 0.0]
        shading = SceneShading(cloud)
        assert shading.evaluate_hit(0, np.array([5.0, 0.0, 0.0]),
                                    np.array([1.0, 0.0, 0.0])) is None
