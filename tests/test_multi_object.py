"""Tests for dynamic / multi-object scenes (Section VI)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.bvh.multi_object import (
    GaussianObject,
    MultiObjectScene,
    ObjectPose,
)
from repro.bvh.node import KIND_EMPTY
from repro.render import GaussianRayTracer, PinholeCamera
from repro.rt import TraceConfig

from tests.conftest import tiny_cloud


def make_pose(tx=0.0, ty=0.0, tz=0.0, scale=1.0, quat=(1.0, 0.0, 0.0, 0.0)):
    return ObjectPose(translation=np.array([tx, ty, tz]),
                      rotation=np.array(quat), scale=scale)


@pytest.fixture()
def scene():
    scene = MultiObjectScene()
    obj = GaussianObject(tiny_cloud(48, seed=40))
    scene.add_object(obj)
    return scene


class TestObjectPose:
    def test_identity(self):
        pose = ObjectPose.identity()
        pts = np.array([[1.0, 2.0, 3.0]])
        np.testing.assert_allclose(pose.matrix.apply_point(pts), pts)

    def test_compose_matches_matrix_product(self):
        rng = np.random.default_rng(0)
        a = ObjectPose(rng.normal(size=3), rng.normal(size=4), 1.5)
        b = ObjectPose(rng.normal(size=3), rng.normal(size=4), 0.7)
        composed = a.compose(b)
        pts = rng.normal(size=(8, 3))
        expected = a.matrix.apply_point(b.matrix.apply_point(pts))
        np.testing.assert_allclose(composed.matrix.apply_point(pts), expected, atol=1e-9)

    def test_rejects_nonpositive_scale(self):
        with pytest.raises(ValueError):
            make_pose(scale=0.0)


class TestGaussianObject:
    def test_world_bounds_translate(self):
        obj = GaussianObject(tiny_cloud(32, seed=41))
        lo0, hi0 = obj.world_bounds(ObjectPose.identity())
        lo1, hi1 = obj.world_bounds(make_pose(tx=10.0))
        np.testing.assert_allclose(lo1 - lo0, [10.0, 0.0, 0.0], atol=1e-9)
        np.testing.assert_allclose(hi1 - hi0, [10.0, 0.0, 0.0], atol=1e-9)

    def test_world_bounds_scale(self):
        obj = GaussianObject(tiny_cloud(32, seed=42))
        lo1, hi1 = obj.world_bounds(make_pose(scale=2.0))
        lo0, hi0 = obj.world_bounds(ObjectPose.identity())
        assert np.all((hi1 - lo1) >= (hi0 - lo0) * 2.0 - 1e-9)

    def test_posed_cloud_preserves_gaussian_count_and_opacity(self):
        cloud = tiny_cloud(32, seed=43)
        obj = GaussianObject(cloud)
        posed = obj.posed_cloud(make_pose(tx=3.0, scale=1.3))
        assert len(posed) == 32
        np.testing.assert_array_equal(posed.opacities, cloud.opacities)
        np.testing.assert_allclose(posed.scales, cloud.scales * 1.3)

    def test_posed_cloud_identity_is_noop(self):
        cloud = tiny_cloud(16, seed=44)
        posed = GaussianObject(cloud).posed_cloud(ObjectPose.identity())
        np.testing.assert_allclose(posed.means, cloud.means)
        np.testing.assert_allclose(posed.scales, cloud.scales)


class TestMultiObjectScene:
    def test_add_remove_instances(self, scene):
        a = scene.add_instance(0)
        b = scene.add_instance(0, make_pose(tx=20.0))
        assert scene.n_instances == 2
        assert scene.n_gaussians == 96
        scene.remove_instance(a)
        assert scene.n_instances == 1
        with pytest.raises(KeyError):
            scene.remove_instance(a)
        assert b in scene._instances

    def test_tlas_rebuild_counting(self, scene):
        scene.add_instance(0)
        scene.scene_tlas()
        assert scene.stats.rebuilds == 1
        scene.add_instance(0, make_pose(tx=30.0))
        scene.scene_tlas()
        assert scene.stats.rebuilds == 2

    def test_move_refits_without_rebuild(self, scene):
        iid = scene.add_instance(0)
        scene.add_instance(0, make_pose(tx=25.0))
        scene.scene_tlas()
        rebuilds = scene.stats.rebuilds
        scene.move_instance(iid, make_pose(ty=40.0))
        tlas = scene.scene_tlas()
        assert scene.stats.rebuilds == rebuilds
        assert scene.stats.refits == 1
        # The refit TLAS must cover the moved instance.
        root_lo, root_hi = tlas.root_box()
        lo, hi = scene._objects[0].world_bounds(make_pose(ty=40.0))
        assert np.all(root_lo <= lo + 1e-9)
        assert np.all(root_hi >= hi - 1e-9)

    def test_refit_boxes_contain_children(self, scene):
        a = scene.add_instance(0)
        scene.add_instance(0, make_pose(tx=25.0))
        scene.add_instance(0, make_pose(ty=-18.0))
        scene.scene_tlas()
        scene.move_instance(a, make_pose(tz=12.0))
        tlas = scene.scene_tlas()
        tlas.validate()

    def test_empty_scene_rejected(self, scene):
        with pytest.raises(ValueError):
            scene.scene_tlas()
        with pytest.raises(ValueError):
            scene.flatten()

    def test_unknown_object_rejected(self, scene):
        with pytest.raises(IndexError):
            scene.add_instance(5)

    def test_instancing_shares_structures(self, scene):
        for i in range(6):
            scene.add_instance(0, make_pose(tx=10.0 * i))
        assert scene.total_bytes() < scene.naive_bytes() / 3

    def test_flatten_and_render(self, scene):
        scene.add_instance(0)
        scene.add_instance(0, make_pose(tx=12.0))
        cloud, structure = scene.flatten()
        assert len(cloud) == 96
        camera = PinholeCamera(
            position=np.array([6.0, -30.0, 4.0]),
            look_at=np.array([6.0, 0.0, 0.0]),
            up=np.array([0.0, 0.0, 1.0]),
            width=8, height=8, fov_y=np.deg2rad(50),
        )
        result = GaussianRayTracer(cloud, structure, TraceConfig(k=4)).render(
            camera, keep_traces=False
        )
        assert result.image.sum() > 0.0

    def test_moving_object_changes_render(self, scene):
        iid = scene.add_instance(0)
        camera = PinholeCamera(
            position=np.array([0.0, -25.0, 0.0]),
            look_at=np.zeros(3),
            up=np.array([0.0, 0.0, 1.0]),
            width=8, height=8, fov_y=np.deg2rad(50),
        )
        cloud, structure = scene.flatten()
        before = GaussianRayTracer(cloud, structure, TraceConfig(k=4)).render(
            camera, keep_traces=False
        ).image
        scene.move_instance(iid, make_pose(tx=100.0))
        cloud2, structure2 = scene.flatten()
        after = GaussianRayTracer(cloud2, structure2, TraceConfig(k=4)).render(
            camera, keep_traces=False
        ).image
        assert not np.array_equal(before, after)
        assert after.sum() < before.sum()

    def test_two_distinct_objects(self):
        scene = MultiObjectScene()
        scene.add_object(GaussianObject(tiny_cloud(24, seed=50)))
        scene.add_object(GaussianObject(tiny_cloud(40, seed=51)))
        scene.add_instance(0)
        scene.add_instance(1, make_pose(tx=15.0))
        assert scene.n_gaussians == 64
        tlas = scene.scene_tlas()
        assert tlas.n_prims == 2
