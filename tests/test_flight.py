"""The flight recorder: ring semantics, checkpoints, bundles, doctor.

The recorder is always on, so these tests pin the properties that make
that safe (bounded memory, O(µs) recording, no-op when disabled) as
well as the forensic contract: checkpoints and bundles round-trip
through their schemas, dumps are rate-limited and pruned, and the
doctor's triage names the right culprits. Pool-integration crash
scenarios live in ``test_pool.py``.
"""

from __future__ import annotations

import json
import time

import numpy as np
import pytest

from repro.obs import doctor, flight
from repro.obs import events as ev
from repro.obs.flight import FlightRecorder


@pytest.fixture
def flight_tmp(tmp_path, monkeypatch):
    """Point the recorder at a private directory, no rate limiting."""
    fdir = tmp_path / "flight"
    monkeypatch.setenv("REPRO_FLIGHT_DIR", str(fdir))
    flight.configure(min_interval=0.0, enabled=True)
    flight.reset()
    yield fdir
    flight.reset()
    flight.configure(min_interval=flight.DEFAULT_MIN_INTERVAL)


# ---------------------------------------------------------------------------
# Ring semantics.


class TestRing:
    def test_wraparound_keeps_newest(self):
        ring = FlightRecorder(capacity=8)
        for index in range(20):
            ring.record(ev.STATE, "tick", {"i": index})
        assert len(ring) == 8
        kept = [event[5]["i"] for event in ring.events()]
        assert kept == list(range(12, 20))

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            FlightRecorder(capacity=0)

    def test_events_are_a_snapshot(self):
        ring = FlightRecorder(capacity=4)
        ring.record(ev.STATE, "a")
        snapshot = ring.events()
        ring.record(ev.STATE, "b")
        assert len(snapshot) == 1

    def test_record_overhead_bounded(self):
        """Recording must stay far below anything a per-tile path would
        notice (the CI gate budgets 3% on a whole render)."""
        ring = FlightRecorder(capacity=512)
        n = 20_000
        started = time.perf_counter()
        for index in range(n):
            ring.record(ev.SPAN, "bench.tick", {"i": index})
        per_event = (time.perf_counter() - started) / n
        assert per_event < 50e-6  # generous: observed ~1µs

    def test_disabled_recorder_is_a_noop(self, flight_tmp):
        flight.configure(enabled=False)
        try:
            flight.record(ev.STATE, "ghost")
            assert flight.events() == []
            assert flight.dump_incident("worker-crash") is None
            assert flight.checkpoint_worker(0) is None
        finally:
            flight.configure(enabled=True)

    def test_span_mirrors_into_ring_without_sink(self, flight_tmp):
        from repro.obs import span, tracing_active

        assert not tracing_active()
        with span("test.region", rays=5):
            pass
        spans = [event for event in flight.events() if event[3] == ev.SPAN]
        assert spans and spans[-1][4] == "test.region"
        assert spans[-1][5]["rays"] == 5
        assert "dur_us" in spans[-1][5]

    def test_event_dict_roundtrip(self):
        ring = FlightRecorder(capacity=2)
        ring.record(ev.CRASH, "pool.worker_crash", {"worker": 3})
        event = ev.as_dict(ring.events()[0])
        assert ev.validate_flight_event(event) == []
        assert event["kind"] == ev.CRASH
        assert event["data"] == {"worker": 3}

    def test_validate_rejects_malformed_events(self):
        assert ev.validate_flight_event([]) == ["event is not an object"]
        problems = ev.validate_flight_event(
            {"ts": -1, "pid": True, "kind": "nope", "name": ""})
        joined = " ".join(problems)
        assert "tid" in joined  # missing required field
        assert "non-negative" in joined
        assert "unknown event kind" in joined
        assert "non-empty" in joined


# ---------------------------------------------------------------------------
# Worker checkpoints.


class TestCheckpoints:
    def test_checkpoint_roundtrip(self, flight_tmp):
        flight.record(ev.STATE, "worker.task_start", worker=7, task=42)
        path = flight.checkpoint_worker(7)
        assert path is not None
        checkpoints = flight.load_worker_checkpoints()
        assert [c["worker_id"] for c in checkpoints] == [7]
        events = checkpoints[0]["events"]
        assert events[-1]["name"] == "worker.task_start"
        assert events[-1]["data"] == {"worker": 7, "task": 42}
        assert "metrics" in checkpoints[0]

    def test_clear_checkpoint(self, flight_tmp):
        flight.checkpoint_worker(1)
        assert flight.load_worker_checkpoints()
        flight.clear_worker_checkpoint(1)
        assert flight.load_worker_checkpoints() == []

    def test_garbage_spool_files_skipped(self, flight_tmp):
        flight.checkpoint_worker(0)
        spool = flight_tmp / "spool"
        (spool / "worker-torn.json").write_text("{not json")
        (spool / "worker-alien.json").write_text('{"schema": "other/v1"}')
        checkpoints = flight.load_worker_checkpoints()
        assert [c["worker_id"] for c in checkpoints] == [0]


# ---------------------------------------------------------------------------
# Incident bundles.


class TestBundles:
    def test_bundle_schema_and_contents(self, flight_tmp):
        flight.record(ev.SHED, "serve.shed", scene="train")
        flight.checkpoint_worker(2)
        path = flight.dump_incident("server-saturated",
                                    scene="train", max_pending=4)
        assert path is not None
        bundle = doctor.load_bundle(path)
        assert doctor.validate_bundle(bundle) == []
        assert bundle["reason"] == "server-saturated"
        assert bundle["context"] == {"scene": "train", "max_pending": 4}
        assert [c["worker_id"] for c in bundle["workers"]] == [2]
        assert any(event["name"] == "serve.shed"
                   for event in bundle["events"])
        assert all(key.startswith(("REPRO_", "GRTX_"))
                   for key in bundle["environment"])

    def test_numpy_payloads_survive_json(self, flight_tmp):
        flight.record(ev.COMPLETE, "pool.complete",
                      rays=np.int64(640), cost=np.float32(0.25))
        path = flight.dump_incident("worker-crash", worker=np.int32(1))
        with open(path, "r", encoding="utf-8") as fh:
            bundle = json.load(fh)
        assert bundle["context"]["worker"] == 1
        event = [e for e in bundle["events"]
                 if e["name"] == "pool.complete"][0]
        assert event["data"]["rays"] == 640

    def test_rate_limit_per_reason(self, flight_tmp):
        flight.configure(min_interval=60.0)
        assert flight.dump_incident("worker-crash") is not None
        assert flight.dump_incident("worker-crash") is None
        # A different reason is not limited by the first.
        assert flight.dump_incident("server-saturated") is not None
        flight.reset()  # re-arms
        assert flight.dump_incident("worker-crash") is not None

    def test_old_bundles_pruned(self, flight_tmp):
        for index in range(flight.MAX_BUNDLES + 4):
            assert flight.dump_incident(f"reason-{index}") is not None
        bundles = list(flight_tmp.glob("incident-*.json"))
        assert len(bundles) == flight.MAX_BUNDLES

    def test_dump_never_raises_on_bad_directory(self, flight_tmp,
                                                monkeypatch):
        flight_tmp.mkdir(parents=True, exist_ok=True)
        target = flight_tmp / "blocked"
        target.write_text("a file where the directory should go")
        monkeypatch.setenv("REPRO_FLIGHT_DIR", str(target))
        assert flight.dump_incident("worker-crash") is None
        assert flight.last_error() is not None

    def test_load_bundle_rejects_non_bundles(self, tmp_path):
        path = tmp_path / "not-a-bundle.json"
        path.write_text('{"schema": "something/else"}')
        with pytest.raises(ValueError, match="not an incident bundle"):
            doctor.load_bundle(str(path))


# ---------------------------------------------------------------------------
# Doctor triage.


def _synthetic_bundle(reason, context, events_list=(), workers=()):
    return {
        "schema": flight.FLIGHT_SCHEMA,
        "created_unix": 0.0,
        "reason": reason,
        "context": context,
        "process": {"pid": 1, "argv": ["repro"]},
        "environment": {},
        "events": list(events_list),
        "workers": list(workers),
        "metrics": {"counters": {"pool.crashes": 2, "pool.requeues": 1},
                    "histograms": {}},
    }


class TestDoctor:
    def test_triage_merges_and_sorts_timeline(self):
        parent = [{"ts": 30, "pid": 1, "tid": 1, "kind": ev.CRASH,
                   "name": "pool.worker_crash"}]
        worker = {"schema": flight.CHECKPOINT_SCHEMA, "worker_id": 0,
                  "pid": 2, "written_unix": 0.0, "metrics": {},
                  "events": [{"ts": 10, "pid": 2, "tid": 1,
                              "kind": ev.STATE, "name": "worker.start"},
                             {"ts": 20, "pid": 2, "tid": 1,
                              "kind": ev.STATE, "name": "worker.task_start",
                              "data": {"task": 5}}]}
        analysis = doctor.triage(_synthetic_bundle(
            "worker-crash", {"worker": 0, "exitcode": -9},
            parent, [worker]))
        assert [event["ts"] for event in analysis["timeline"]] == [10, 20, 30]
        assert analysis["last_events"]["worker 0"]["name"] == \
            "worker.task_start"
        assert dict(analysis["anomalies"])["pool.crashes"] == 2
        causes = " ".join(analysis["probable_causes"])
        assert "SIGKILL" in causes
        assert "died mid-task" in causes

    def test_retries_exhausted_blames_the_task(self):
        analysis = doctor.triage(_synthetic_bundle(
            "task-retries-exhausted",
            {"worker": 1, "exitcode": 1, "task": 9, "retries": 3}))
        causes = " ".join(analysis["probable_causes"])
        assert "poison payload" in causes

    def test_saturation_heuristic(self):
        analysis = doctor.triage(_synthetic_bundle(
            "server-saturated", {"max_pending": 4}))
        assert "offered load" in " ".join(analysis["probable_causes"])

    def test_unknown_reason_still_reports(self):
        analysis = doctor.triage(_synthetic_bundle("meteor-strike", {}))
        assert "no heuristic" in " ".join(analysis["probable_causes"])

    def test_report_renders_sections(self, flight_tmp):
        flight.record(ev.CRASH, "pool.worker_crash", worker=0, exitcode=-9)
        path = flight.dump_incident("worker-crash", worker=0, exitcode=-9)
        report = doctor.render_report(doctor.load_bundle(path))
        for section in ("probable cause", "last event per process",
                        "timeline"):
            assert section in report
