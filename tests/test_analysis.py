"""The static-analysis subsystem: rules, waivers, baseline, reporters.

The fixture corpus under ``tests/fixtures/analysis`` reconstructs each
bug the repo actually shipped (id-keyed tracer cache, gauge shadowing,
post-key engine resolution, unlocked shared state, pool payload
violations) and pins every rule two ways: the ``bad_*`` file must be
flagged by *exactly* the intended rule, and the ``good_*`` blessed
patterns must stay clean. On top of that: suppression and baseline
round-trips, reporter schemas, and the live-tree self-check that keeps
``repro lint --strict`` green on the repo itself.
"""

from __future__ import annotations

import gc
import json
import os
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

from repro.analysis import (
    BASELINE_SCHEMA,
    ERROR,
    REPORT_SCHEMA,
    WARNING,
    LintConfig,
    all_rules,
    get_rule,
    load_baseline,
    render_json,
    render_text,
    run_lint,
    write_baseline,
)
from repro.analysis.runner import (
    RULE_BAD_SUPPRESSION,
    RULE_PARSE_ERROR,
    RULE_UNUSED_SUPPRESSION,
)
from repro.util import IdentityMemo

ROOT = Path(__file__).resolve().parents[1]
FIXTURES = Path(__file__).parent / "fixtures" / "analysis"

_META_RULES = {RULE_PARSE_ERROR, RULE_BAD_SUPPRESSION, RULE_UNUSED_SUPPRESSION}


def lint_fixture(name: str, assume_parity: bool = False):
    return run_lint([FIXTURES / name],
                    config=LintConfig(assume_parity=assume_parity))


def active_rules(result) -> set[str]:
    return {f.rule for f in result.active} - _META_RULES


# ---------------------------------------------------------------------------
# The fixture corpus: each historical bug -> exactly its rule.
# ---------------------------------------------------------------------------

CORPUS = [
    ("bad_idcache.py", {"id-keyed-cache"}, False),
    ("bad_gauge_shadow.py", {"shadowed-dict-key"}, False),
    ("bad_engine_after_key.py", {"engine-before-key"}, False),
    ("bad_unlocked_attr.py", {"lock-discipline"}, False),
    ("bad_module_global.py", {"lock-discipline"}, False),
    ("bad_cache_key.py", {"cache-key-params"}, False),
    ("bad_procboundary.py", {"process-boundary"}, False),
    ("bad_flightpayload.py", {"flight-serializable"}, False),
    ("bad_nondeterminism.py", {"parity-nondeterminism"}, True),
    ("bad_float_eq.py", {"float-eq"}, True),
    ("bad_hygiene.py", {"mutable-default", "broad-except"}, False),
    ("bad_chaospoint.py", {"chaos-point-registered"}, False),
]


@pytest.mark.parametrize("name,expected,parity", CORPUS,
                         ids=[c[0] for c in CORPUS])
def test_fixture_flagged_by_exactly_the_intended_rule(name, expected, parity):
    result = lint_fixture(name, assume_parity=parity)
    assert active_rules(result) == expected


def test_gauge_shadow_fixture_catches_both_shapes():
    # The subscript re-write and the duplicate dict-literal key.
    result = lint_fixture("bad_gauge_shadow.py")
    assert len(result.active) == 2


def test_procboundary_fixture_flags_every_payload_shape():
    result = lint_fixture("bad_procboundary.py")
    messages = " ".join(f.message for f in result.active)
    for shape in ("lambda", "generator", "closure", "open file handle"):
        assert shape in messages


def test_flightpayload_fixture_flags_every_shape():
    result = lint_fixture("bad_flightpayload.py")
    messages = " ".join(f.message for f in result.active)
    for shape in ("lambda", "comprehension", "set literal", "bytes",
                  "set()", "open file handle"):
        assert shape in messages, f"missing {shape!r} finding"


def test_engine_fixture_flags_both_orderings():
    result = lint_fixture("bad_engine_after_key.py")
    assert len(result.active) == 2
    symbols = {f.symbol for f in result.active}
    assert symbols == {"render_cached", "render_resolved_late"}


def test_nondeterminism_fixture_needs_the_parity_surface():
    # Off the parity surface the same file is clean: the rule scopes
    # itself from the surface, not from a hand-maintained list.
    assert active_rules(lint_fixture("bad_nondeterminism.py")) == set()
    assert active_rules(lint_fixture("bad_float_eq.py")) == set()


def test_chaospoint_fixture_flags_every_shape():
    result = lint_fixture("bad_chaospoint.py")
    assert len(result.active) == 5
    messages = " ".join(f.message for f in result.active)
    for shape in ("unregistered", "non-literal", "bypasses the chaos layer",
                  "os.environ[...]"):
        assert shape in messages, f"missing {shape!r} finding"


def test_chaos_rule_accepts_registered_literal_points():
    # The real injection sites (worker task loop, registry disk IO)
    # use registered literals — the live-tree strict gate depends on
    # this staying clean, so pin it directly too.
    from repro.chaos import POINTS

    source = "".join(
        f"def probe_{i}(chaos):\n    return chaos.point({name!r})\n\n"
        for i, name in enumerate(sorted(POINTS)))
    result = run_lint_on_source(source)
    assert active_rules(result) == set()


def run_lint_on_source(source, tmp_dir=None):
    import tempfile

    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "sample.py"
        path.write_text(source)
        return run_lint([path], config=LintConfig())


def test_blessed_patterns_lint_clean():
    result = lint_fixture("good_blessed.py", assume_parity=True)
    assert result.findings == []


# ---------------------------------------------------------------------------
# Suppressions.
# ---------------------------------------------------------------------------

BAD_FLOAT = "def f(x):\n    return x == 1.0{marker}\n"


def _lint_source(tmp_path, source, assume_parity=True):
    path = tmp_path / "sample.py"
    path.write_text(source)
    return run_lint([path], config=LintConfig(assume_parity=assume_parity))


def test_line_suppression_waives_and_records_reason(tmp_path):
    marker = "  # repro: lint-ok[float-eq] exact saturation sentinel"
    result = _lint_source(tmp_path, BAD_FLOAT.format(marker=marker))
    assert result.active == []
    (finding,) = [f for f in result.findings if f.suppressed]
    assert finding.rule == "float-eq"
    assert finding.suppress_reason == "exact saturation sentinel"
    assert not result.gate_failed(strict=True)


def test_scope_suppression_covers_the_whole_def(tmp_path):
    source = textwrap.dedent("""\
        def f(x):  # repro: lint-ok[float-eq] whole fn compares saturation sentinels
            a = x == 1.0
            b = x != 0.0
            return a or b
        """)
    result = _lint_source(tmp_path, source)
    assert result.active == []
    assert sum(f.suppressed for f in result.findings) == 2


def test_suppression_without_reason_is_itself_a_finding(tmp_path):
    result = _lint_source(
        tmp_path, BAD_FLOAT.format(marker="  # repro: lint-ok[float-eq]"))
    rules = {f.rule for f in result.active}
    # The marker is malformed, so the float-eq finding stays live too.
    assert rules == {RULE_BAD_SUPPRESSION, "float-eq"}


def test_unused_suppression_is_flagged_as_stale(tmp_path):
    result = _lint_source(
        tmp_path, "def f(x):\n    return x  # repro: lint-ok[float-eq] stale\n")
    (finding,) = result.active
    assert finding.rule == RULE_UNUSED_SUPPRESSION
    assert finding.severity == WARNING


def test_marker_inside_a_docstring_is_not_a_suppression(tmp_path):
    source = ('def f():\n'
              '    """Use `# repro: lint-ok[rule-id] reason` to waive."""\n'
              '    return None\n')
    result = _lint_source(tmp_path, source)
    assert result.findings == []


def test_unparseable_file_is_a_finding_not_a_crash(tmp_path):
    result = _lint_source(tmp_path, "def broken(:\n", assume_parity=False)
    (finding,) = result.active
    assert finding.rule == RULE_PARSE_ERROR
    assert finding.severity == ERROR


# ---------------------------------------------------------------------------
# Baseline.
# ---------------------------------------------------------------------------

def test_baseline_round_trip_grandfathers_findings(tmp_path):
    path = tmp_path / "sample.py"
    path.write_text(BAD_FLOAT.format(marker=""))
    first = run_lint([path], config=LintConfig(assume_parity=True))
    assert first.gate_failed(strict=False)

    baseline_path = tmp_path / "baseline.json"
    write_baseline(baseline_path, first.active)
    baseline = load_baseline(baseline_path)
    assert len(baseline) == 1

    again = run_lint([path], config=LintConfig(assume_parity=True),
                     baseline=baseline)
    assert again.active == []
    assert sum(f.baselined for f in again.findings) == 1
    assert not again.gate_failed(strict=True)


def test_baseline_survives_line_drift(tmp_path):
    path = tmp_path / "sample.py"
    path.write_text(BAD_FLOAT.format(marker=""))
    first = run_lint([path], config=LintConfig(assume_parity=True))
    baseline_path = tmp_path / "baseline.json"
    baseline = write_baseline(baseline_path, first.active)

    # Edits above the finding shift its line; the fingerprint holds.
    path.write_text("# a new header comment\n\n" + BAD_FLOAT.format(marker=""))
    again = run_lint([path], config=LintConfig(assume_parity=True),
                     baseline=baseline)
    assert again.active == []
    assert sum(f.baselined for f in again.findings) == 1


def test_baseline_rejects_unknown_schema(tmp_path):
    path = tmp_path / "baseline.json"
    path.write_text(json.dumps({"schema": "nope/9", "findings": []}))
    with pytest.raises(ValueError, match="unknown schema"):
        load_baseline(path)


def test_missing_baseline_is_empty():
    assert len(load_baseline(Path("/nonexistent/baseline.json"))) == 0


def test_committed_baseline_is_empty_and_well_formed():
    baseline_path = ROOT / "lint_baseline.json"
    doc = json.loads(baseline_path.read_text())
    assert doc["schema"] == BASELINE_SCHEMA
    assert doc["findings"] == []


# ---------------------------------------------------------------------------
# Reporters.
# ---------------------------------------------------------------------------

def test_json_report_schema(tmp_path):
    result = _lint_source(tmp_path, BAD_FLOAT.format(marker=""))
    doc = json.loads(render_json(result.findings, result.files_scanned,
                                 strict=True,
                                 parity_modules=sorted(result.parity_modules)))
    assert doc["schema"] == REPORT_SCHEMA
    assert doc["strict"] is True
    assert doc["files_scanned"] == 1
    assert doc["counts"]["errors"] == 1
    (finding,) = doc["findings"]
    for key in ("rule", "severity", "path", "line", "symbol", "message",
                "fingerprint"):
        assert key in finding
    assert finding["rule"] == "float-eq"
    assert finding["symbol"] == "f"


def test_text_report_names_site_and_totals(tmp_path):
    result = _lint_source(tmp_path, BAD_FLOAT.format(marker=""))
    text = render_text(result.findings, result.files_scanned)
    assert "sample.py:2: error[float-eq]" in text
    assert "1 files scanned: 1 errors" in text


# ---------------------------------------------------------------------------
# Config: per-subsystem severity.
# ---------------------------------------------------------------------------

def test_relaxed_subsystems_downgrade_only_the_relaxed_rules():
    config = LintConfig()
    relaxed = get_rule("cache-key-params")
    assert config.severity_for(relaxed, "serve") == WARNING
    assert config.severity_for(relaxed, "rt") == ERROR
    assert config.severity_for(relaxed, None) == ERROR  # loose files: strict
    strict = get_rule("lock-discipline")
    assert config.severity_for(strict, "serve") == ERROR


def test_every_rule_documents_its_history():
    rules = all_rules()
    assert len(rules) >= 10
    for rule in rules:
        assert rule.description, rule.id
        assert rule.history, rule.id


# ---------------------------------------------------------------------------
# The live tree: the repo itself must hold its own invariants.
# ---------------------------------------------------------------------------

def test_live_tree_is_clean_under_strict():
    result = run_lint()
    offenders = [(f.path, f.line, f.rule, f.message) for f in result.active]
    assert offenders == []
    assert not result.gate_failed(strict=True)


def test_parity_surface_comes_from_the_import_graph():
    result = run_lint()
    assert "repro.render.renderer" in result.parity_modules
    assert "repro.rt.tracer" in result.parity_modules
    # The wavefront engine sits behind the same parity contract as the
    # packet engine, so the lint invariants apply to it too.
    assert "repro.rt.wavefront" in result.parity_modules
    assert "repro.bvh.flatten" in result.parity_modules
    # Layers above the render path are not on the surface.
    assert "repro.eval.harness" not in result.parity_modules
    assert "repro.analysis.core" not in result.parity_modules


# ---------------------------------------------------------------------------
# The CLI gate (what CI runs).
# ---------------------------------------------------------------------------

def _run_cli(*argv, cwd=None):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(ROOT / "src") + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.run([sys.executable, "-m", "repro", "lint", *argv],
                          capture_output=True, text=True, env=env,
                          cwd=cwd or ROOT)


def test_cli_gate_trips_on_a_seeded_violation(tmp_path):
    bad = tmp_path / "seeded.py"
    bad.write_text("import threading\n\n_SHARED: dict = {}\n"
                   "_LOCK = threading.Lock()\n\n\n"
                   "def poke(key):\n    _SHARED[key] = 1\n")
    proc = _run_cli(str(bad), "--strict", "--json")
    assert proc.returncode == 1
    doc = json.loads(proc.stdout)
    assert doc["counts"]["errors"] == 1
    assert doc["findings"][0]["rule"] == "lock-discipline"


def test_cli_gate_trips_on_a_seeded_chaos_violation(tmp_path):
    # What the CI chaos-smoke job runs: an ad-hoc REPRO_CHAOS env read
    # must fail the strict gate under chaos-point-registered.
    bad = tmp_path / "seeded_chaos.py"
    bad.write_text("import os\n\n\ndef gate():\n"
                   "    return os.environ.get('REPRO_CHAOS')\n")
    proc = _run_cli(str(bad), "--strict", "--json")
    assert proc.returncode == 1
    doc = json.loads(proc.stdout)
    assert doc["findings"][0]["rule"] == "chaos-point-registered"


def test_cli_passes_on_a_clean_file(tmp_path):
    good = tmp_path / "clean.py"
    good.write_text("def double(x):\n    return 2 * x\n")
    proc = _run_cli(str(good), "--strict")
    assert proc.returncode == 0


def test_cli_list_rules_names_the_catalog():
    proc = _run_cli("--list-rules")
    assert proc.returncode == 0
    for rule_id in ("id-keyed-cache", "lock-discipline",
                    "parity-nondeterminism", "engine-before-key"):
        assert rule_id in proc.stdout


# ---------------------------------------------------------------------------
# The shared identity memo (satellite of the same PR).
# ---------------------------------------------------------------------------

class _Payload:
    pass


def test_identity_memo_hits_on_the_same_object():
    memo = IdentityMemo()
    obj = _Payload()
    built = []

    def build(o):
        built.append(o)
        return len(built)

    assert memo.get_or_build(obj, build) == 1
    assert memo.get_or_build(obj, build) == 1
    assert built == [obj]


def test_identity_memo_evicts_on_gc():
    memo = IdentityMemo()
    obj = _Payload()
    memo.put(obj, "value")
    assert len(memo) == 1
    del obj
    gc.collect()
    assert len(memo) == 0


def test_identity_memo_never_serves_a_different_object():
    memo = IdentityMemo()
    a, b = _Payload(), _Payload()
    memo.put(a, "a")
    assert memo.get(b) is None
    assert memo.get(a) == "a"


def test_identity_memo_tolerates_unweakrefable_objects():
    memo = IdentityMemo()
    key = (1, 2, 3)  # tuples cannot be weakly referenced
    memo.put(key, "v")
    assert memo.get(key) is None  # uncached, but no crash
    assert memo.get_or_build(key, lambda _: "built") == "built"
