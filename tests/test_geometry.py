"""Tests for geometry kernels: AABBs, rays, proxy meshes, intersections."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import (
    AABB,
    Ray,
    RayBundle,
    icosahedron,
    icosphere,
    merge_aabbs,
    ray_aabb,
    ray_aabbs,
    ray_ellipsoid,
    ray_sphere,
    ray_triangle,
    ray_triangles,
    ray_unit_sphere,
    stretched_proxy_mesh,
    unit_icosahedron_circumscribed,
)
from repro.math3d import invert_rigid_scale, quat_to_rotation_matrix


class TestAABB:
    def test_from_points(self):
        pts = np.array([[0, 0, 0], [1, 2, 3], [-1, 1, 0]], dtype=float)
        box = AABB.from_points(pts)
        np.testing.assert_array_equal(box.lo, [-1, 0, 0])
        np.testing.assert_array_equal(box.hi, [1, 2, 3])

    def test_union(self):
        a = AABB(np.zeros(3), np.ones(3))
        b = AABB(np.array([2.0, 0, 0]), np.array([3.0, 1, 1]))
        u = a.union(b)
        np.testing.assert_array_equal(u.lo, [0, 0, 0])
        np.testing.assert_array_equal(u.hi, [3, 1, 1])

    def test_empty_is_union_identity(self):
        a = AABB(np.array([1.0, 2, 3]), np.array([4.0, 5, 6]))
        u = AABB.empty().union(a)
        np.testing.assert_array_equal(u.lo, a.lo)
        np.testing.assert_array_equal(u.hi, a.hi)

    def test_surface_area(self):
        box = AABB(np.zeros(3), np.array([1.0, 2.0, 3.0]))
        assert box.surface_area == pytest.approx(2 * (2 + 6 + 3))

    def test_surface_area_empty(self):
        assert AABB.empty().surface_area == 0.0

    def test_contains(self):
        outer = AABB(np.zeros(3), np.ones(3) * 4)
        inner = AABB(np.ones(3), np.ones(3) * 2)
        assert outer.contains(inner)
        assert not inner.contains(outer)

    def test_merge_aabbs(self):
        lo = np.array([[0, 0, 0], [1, -1, 0]], dtype=float)
        hi = np.array([[1, 1, 1], [2, 0, 5]], dtype=float)
        box = merge_aabbs(lo, hi)
        np.testing.assert_array_equal(box.lo, [0, -1, 0])
        np.testing.assert_array_equal(box.hi, [2, 1, 5])


class TestRayAABB:
    def test_hit_through_center(self):
        hit, t = ray_aabb(np.array([-2.0, 0.5, 0.5]), 1.0 / np.array([1.0, 1e-12, 1e-12]),
                          np.zeros(3), np.ones(3), 0.0, np.inf)
        assert hit
        assert t == pytest.approx(2.0)

    def test_miss(self):
        hit, _ = ray_aabb(np.array([-2.0, 5.0, 0.5]), 1.0 / np.array([1.0, 1e-12, 1e-12]),
                          np.zeros(3), np.ones(3), 0.0, np.inf)
        assert not hit

    def test_origin_inside(self):
        hit, t = ray_aabb(np.array([0.5, 0.5, 0.5]), 1.0 / np.array([1.0, 1e-12, 1e-12]),
                          np.zeros(3), np.ones(3), 0.0, np.inf)
        assert hit
        assert t == 0.0

    def test_t_max_cull(self):
        hit, _ = ray_aabb(np.array([-10.0, 0.5, 0.5]), 1.0 / np.array([1.0, 1e-12, 1e-12]),
                          np.zeros(3), np.ones(3), 0.0, 5.0)
        assert not hit

    def test_batched_matches_scalar(self):
        rng = np.random.default_rng(0)
        lo = rng.uniform(-5, 0, size=(64, 3))
        hi = lo + rng.uniform(0.1, 3.0, size=(64, 3))
        origin = np.array([-8.0, 0.0, 0.0])
        direction = np.array([1.0, 0.05, -0.02])
        inv = 1.0 / direction
        hits, entries = ray_aabbs(origin, inv, lo, hi, 0.0, np.inf)
        for i in range(64):
            hit, entry = ray_aabb(origin, inv, lo[i], hi[i], 0.0, np.inf)
            assert hit == hits[i]
            if hit:
                assert entry == pytest.approx(entries[i])


class TestRay:
    def test_ray_at(self):
        ray = Ray(np.zeros(3), np.array([0.0, 1.0, 0.0]))
        np.testing.assert_allclose(ray.at(2.5), [0.0, 2.5, 0.0])

    def test_ray_rejects_batch(self):
        with pytest.raises(ValueError):
            Ray(np.zeros((2, 3)), np.zeros((2, 3)))

    def test_bundle_normalizes_directions(self):
        bundle = RayBundle(np.zeros((3, 3)), np.array([[2.0, 0, 0], [0, 3.0, 0], [0, 0, 1.0]]))
        np.testing.assert_allclose(np.linalg.norm(bundle.directions, axis=1), 1.0)

    def test_bundle_default_pixel_ids(self):
        bundle = RayBundle(np.zeros((4, 3)), np.tile([1.0, 0, 0], (4, 1)))
        np.testing.assert_array_equal(bundle.pixel_ids, np.arange(4))

    def test_bundle_subset(self):
        bundle = RayBundle(np.arange(12.0).reshape(4, 3), np.tile([1.0, 0, 0], (4, 1)))
        sub = bundle.subset(np.array([2, 0]))
        np.testing.assert_array_equal(sub.pixel_ids, [2, 0])


class TestProxyMeshes:
    def test_icosahedron_counts(self):
        verts, faces = icosahedron()
        assert verts.shape == (12, 3)
        assert faces.shape == (20, 3)

    def test_icosphere_counts(self):
        verts, faces = icosphere(1)
        assert faces.shape == (80, 3)
        np.testing.assert_allclose(np.linalg.norm(verts, axis=1), 1.0, atol=1e-12)

    def test_icosphere_is_watertight(self):
        """Every edge must be shared by exactly two faces."""
        for sub in (0, 1):
            _, faces = icosphere(sub)
            edges: dict[tuple[int, int], int] = {}
            for a, b, c in faces:
                for e in ((a, b), (b, c), (c, a)):
                    key = (min(e), max(e))
                    edges[key] = edges.get(key, 0) + 1
            assert all(count == 2 for count in edges.values())

    def test_circumscribed_contains_unit_sphere(self):
        """Every face plane of the circumscribed proxy lies at distance
        >= 1 from the origin, so the proxy fully contains the sphere —
        the conservativeness property that makes proxy hits a superset
        of true ellipsoid hits."""
        for sub in (0, 1):
            verts, faces = unit_icosahedron_circumscribed(sub)
            tri = verts[faces]
            normals = np.cross(tri[:, 1] - tri[:, 0], tri[:, 2] - tri[:, 0])
            normals /= np.linalg.norm(normals, axis=1, keepdims=True)
            dist = np.abs(np.einsum("fi,fi->f", normals, tri[:, 0]))
            assert np.all(dist >= 1.0 - 1e-12)
            assert dist.min() == pytest.approx(1.0, abs=1e-9)

    def test_stretched_mesh_contains_ellipsoid_samples(self):
        rng = np.random.default_rng(1)
        mean = np.array([1.0, -2.0, 0.5])
        quat = rng.normal(size=4)
        radii = np.array([0.5, 1.5, 0.2])
        verts, faces = stretched_proxy_mesh(mean, quat, radii)
        # Sample ellipsoid surface points and check they are inside the
        # proxy by testing the ray from the centroid.
        rot = quat_to_rotation_matrix(quat / np.linalg.norm(quat))
        unit = rng.normal(size=(128, 3))
        unit /= np.linalg.norm(unit, axis=1, keepdims=True)
        surface = (unit * radii) @ rot.T + mean
        # All face planes, outward normals: points must be on inner side.
        tri = verts[faces]
        normals = np.cross(tri[:, 1] - tri[:, 0], tri[:, 2] - tri[:, 0])
        centers = tri.mean(axis=1)
        outward = np.einsum("fi,fi->f", normals, centers - mean) > 0
        normals[~outward] *= -1.0
        for p in surface:
            side = np.einsum("fi,fi->f", normals, p[None, :] - centers)
            assert np.all(side <= 1e-9)


class TestIntersections:
    def test_ray_triangle_hit(self):
        t = ray_triangle(np.array([0.25, 0.25, -1.0]), np.array([0.0, 0.0, 1.0]),
                         np.zeros(3), np.array([1.0, 0, 0]), np.array([0, 1.0, 0]))
        assert t == pytest.approx(1.0)

    def test_ray_triangle_miss(self):
        t = ray_triangle(np.array([2.0, 2.0, -1.0]), np.array([0.0, 0.0, 1.0]),
                         np.zeros(3), np.array([1.0, 0, 0]), np.array([0, 1.0, 0]))
        assert t is None

    def test_ray_triangle_parallel(self):
        t = ray_triangle(np.array([0.0, 0.0, 1.0]), np.array([1.0, 0.0, 0.0]),
                         np.zeros(3), np.array([1.0, 0, 0]), np.array([0, 1.0, 0]))
        assert t is None

    def test_ray_triangle_backface_reported(self):
        t = ray_triangle(np.array([0.25, 0.25, 1.0]), np.array([0.0, 0.0, -1.0]),
                         np.zeros(3), np.array([1.0, 0, 0]), np.array([0, 1.0, 0]))
        assert t == pytest.approx(1.0)

    def test_batched_triangles_match_scalar(self):
        rng = np.random.default_rng(2)
        v0 = rng.uniform(-2, 2, size=(64, 3))
        v1 = v0 + rng.uniform(-1, 1, size=(64, 3))
        v2 = v0 + rng.uniform(-1, 1, size=(64, 3))
        origin = np.array([0.0, 0.0, -5.0])
        direction = np.array([0.05, -0.02, 1.0])
        ts = ray_triangles(origin, direction, v0, v1, v2)
        for i in range(64):
            t = ray_triangle(origin, direction, v0[i], v1[i], v2[i])
            if t is None:
                assert not np.isfinite(ts[i])
            else:
                assert ts[i] == pytest.approx(t)

    def test_ray_sphere_two_roots(self):
        roots = ray_sphere(np.array([-3.0, 0, 0]), np.array([1.0, 0, 0]), np.zeros(3), 1.0)
        assert roots == pytest.approx((2.0, 4.0))

    def test_ray_sphere_tangent(self):
        roots = ray_sphere(np.array([-3.0, 1.0, 0]), np.array([1.0, 0, 0]), np.zeros(3), 1.0)
        assert roots is not None
        assert roots[0] == pytest.approx(roots[1], abs=1e-6)

    def test_ray_sphere_miss(self):
        assert ray_sphere(np.array([-3.0, 2.0, 0]), np.array([1.0, 0, 0]),
                          np.zeros(3), 1.0) is None

    def test_unit_sphere_unnormalized_direction_preserves_t(self):
        """Scaled directions rescale t — the parametrization the shared
        BLAS relies on after an instance transform."""
        o = np.array([-4.0, 0.0, 0.0])
        d = np.array([2.0, 0.0, 0.0])
        roots = ray_unit_sphere(o, d)
        assert roots == pytest.approx((1.5, 2.5))

    @given(st.integers(0, 2 ** 32 - 1))
    @settings(max_examples=30)
    def test_ray_ellipsoid_matches_transformed_sphere(self, seed):
        rng = np.random.default_rng(seed)
        mean = rng.uniform(-2, 2, 3)
        radii = np.exp(rng.uniform(-1, 0.5, 3))
        quat = rng.normal(size=4)
        rot = quat_to_rotation_matrix(quat / np.linalg.norm(quat))
        w2o = invert_rigid_scale(mean, rot, radii)
        o = rng.uniform(-6, 6, 3)
        d = rng.normal(size=3)
        result = ray_ellipsoid(o, d, w2o.linear, w2o.offset)
        if result is None:
            return
        t0, t1 = result
        # The entry/exit points must lie on the ellipsoid surface.
        for t in (t0, t1):
            p = o + t * d
            obj = w2o.linear @ p + w2o.offset
            assert np.linalg.norm(obj) == pytest.approx(1.0, abs=1e-6)
