"""Tests for cameras, images, the rasterizer, effects and the renderer."""

from __future__ import annotations

import numpy as np
import pytest

from repro.bvh import build_two_level
from repro.gaussians import GaussianCloud
from repro.render import (
    GaussianRasterizer,
    GaussianRayTracer,
    GlassSphere,
    ImageBuffer,
    Mirror,
    PinholeCamera,
    SceneObjects,
    default_camera_for,
    psnr,
    write_ppm,
)
from repro.render.effects import reflect, refract
from repro.rt import TraceConfig

from tests.conftest import tiny_cloud


def make_camera(width=8, height=8, fov=60.0):
    return PinholeCamera(
        position=np.array([0.0, -10.0, 0.0]),
        look_at=np.zeros(3),
        up=np.array([0.0, 0.0, 1.0]),
        width=width,
        height=height,
        fov_y=np.deg2rad(fov),
    )


class TestCamera:
    def test_ray_count(self):
        cam = make_camera(6, 4)
        bundle = cam.generate_rays()
        assert len(bundle) == 24
        np.testing.assert_allclose(np.linalg.norm(bundle.directions, axis=1), 1.0)

    def test_central_ray_points_at_target(self):
        cam = make_camera(9, 9)
        bundle = cam.generate_rays()
        center_ray = bundle.directions[4 * 9 + 4]
        np.testing.assert_allclose(center_ray, [0.0, 1.0, 0.0], atol=1e-9)

    def test_rays_originate_at_camera(self):
        cam = make_camera()
        bundle = cam.generate_rays()
        np.testing.assert_array_equal(bundle.origins, np.tile(cam.position, (64, 1)))

    def test_fov_controls_spread(self):
        narrow = make_camera(fov=20.0).generate_rays()
        wide = make_camera(fov=90.0).generate_rays()
        n_spread = np.dot(narrow.directions[0], narrow.directions[-1])
        w_spread = np.dot(wide.directions[0], wide.directions[-1])
        assert w_spread < n_spread

    def test_cropped_preserves_angular_pixel_size(self):
        """Figure 19b's transformation: halving the resolution with
        cropping halves the FoV tangent, so per-pixel angles match."""
        cam = make_camera(16, 16)
        cropped = cam.cropped(8, 8)
        full_per_pixel = np.tan(cam.fov_y / 2) / cam.height
        crop_per_pixel = np.tan(cropped.fov_y / 2) / cropped.height
        assert crop_per_pixel == pytest.approx(full_per_pixel)

    def test_with_resolution_keeps_fov(self):
        cam = make_camera(16, 16)
        assert cam.with_resolution(4, 4).fov_y == cam.fov_y

    def test_view_matrix_maps_lookat_to_forward_axis(self):
        cam = make_camera()
        view = cam.view_matrix()
        target = view @ np.append(cam.look_at, 1.0)
        assert target[0] == pytest.approx(0.0, abs=1e-12)
        assert target[1] == pytest.approx(0.0, abs=1e-12)
        assert target[2] == pytest.approx(10.0)

    def test_default_camera_sees_scene(self):
        cloud = tiny_cloud(64)
        cam = default_camera_for(cloud, 8, 8)
        forward = cloud.means.mean(axis=0) - cam.position
        assert np.linalg.norm(forward) > 0

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            make_camera(0, 4)
        with pytest.raises(ValueError):
            make_camera(fov=200.0)


class TestImage:
    def test_buffer_roundtrip(self):
        buf = ImageBuffer(4, 3)
        buf.set_pixel(5, np.array([1.0, 0.5, 0.25]))
        np.testing.assert_array_equal(buf.array[1, 1], [1.0, 0.5, 0.25])

    def test_accumulate(self):
        buf = ImageBuffer(2, 2)
        buf.accumulate(0, np.ones(3), 0.5)
        buf.accumulate(0, np.ones(3), 0.25)
        np.testing.assert_allclose(buf.array[0, 0], 0.75)

    def test_psnr_identical_inf(self):
        img = np.random.default_rng(0).random((4, 4, 3))
        assert psnr(img, img) == float("inf")

    def test_psnr_known_value(self):
        a = np.zeros((2, 2, 3))
        b = np.full((2, 2, 3), 0.1)
        assert psnr(a, b) == pytest.approx(20.0)

    def test_psnr_shape_mismatch(self):
        with pytest.raises(ValueError):
            psnr(np.zeros((2, 2, 3)), np.zeros((3, 2, 3)))

    def test_write_ppm(self, tmp_path):
        img = np.random.default_rng(1).random((5, 7, 3))
        path = tmp_path / "out.ppm"
        write_ppm(path, img)
        data = path.read_bytes()
        assert data.startswith(b"P6\n7 5\n255\n")
        assert len(data) == len(b"P6\n7 5\n255\n") + 5 * 7 * 3


class TestEffects:
    def test_reflect(self):
        out = reflect(np.array([1.0, -1.0, 0.0]), np.array([0.0, 1.0, 0.0]))
        np.testing.assert_allclose(out, [1.0, 1.0, 0.0])

    def test_refract_straight_through(self):
        out = refract(np.array([0.0, -1.0, 0.0]), np.array([0.0, 1.0, 0.0]), 1.0 / 1.5)
        np.testing.assert_allclose(out, [0.0, -1.0, 0.0], atol=1e-12)

    def test_refract_bends_toward_normal(self):
        d = np.array([1.0, -1.0, 0.0]) / np.sqrt(2)
        out = refract(d, np.array([0.0, 1.0, 0.0]), 1.0 / 1.5)
        assert out is not None
        # Entering denser medium: transverse component shrinks.
        assert abs(out[0]) < abs(d[0])

    def test_total_internal_reflection(self):
        d = np.array([1.0, -0.1, 0.0])
        assert refract(d / np.linalg.norm(d), np.array([0.0, 1.0, 0.0]), 1.5) is None

    def test_glass_sphere_intersect(self):
        sphere = GlassSphere(center=np.array([0.0, 0.0, 0.0]), radius=1.0)
        t = sphere.intersect(np.array([-3.0, 0.0, 0.0]), np.array([1.0, 0.0, 0.0]))
        assert t == pytest.approx(2.0)
        assert sphere.intersect(np.array([-3.0, 2.0, 0.0]), np.array([1.0, 0.0, 0.0])) is None

    def test_glass_sphere_axial_ray_passes_straight(self):
        sphere = GlassSphere(center=np.zeros(3), radius=1.0)
        origin, direction = sphere.scatter(
            np.array([-3.0, 0.0, 0.0]), np.array([1.0, 0.0, 0.0]), 2.0
        )
        np.testing.assert_allclose(direction, [1.0, 0.0, 0.0], atol=1e-9)
        assert origin[0] > 0.9

    def test_mirror_intersect_and_bounds(self):
        mirror = Mirror(center=np.zeros(3), half_u=np.array([1.0, 0, 0]),
                        half_v=np.array([0, 1.0, 0]))
        t = mirror.intersect(np.array([0.2, 0.3, -2.0]), np.array([0.0, 0.0, 1.0]))
        assert t == pytest.approx(2.0)
        assert mirror.intersect(np.array([3.0, 0.0, -2.0]), np.array([0.0, 0.0, 1.0])) is None

    def test_mirror_scatter_reflects(self):
        mirror = Mirror(center=np.zeros(3), half_u=np.array([1.0, 0, 0]),
                        half_v=np.array([0, 1.0, 0]))
        d = np.array([0.0, 0.6, 0.8])
        origin, out = mirror.scatter(np.array([0.0, -0.6 * 2, -0.8 * 2]), d, 2.0)
        np.testing.assert_allclose(out, [0.0, 0.6, -0.8], atol=1e-9)

    def test_scene_objects_nearest(self):
        objs = SceneObjects([
            GlassSphere(center=np.array([5.0, 0, 0]), radius=1.0),
            Mirror(center=np.array([10.0, 0, 0]), half_u=np.array([0, 5.0, 0]),
                   half_v=np.array([0, 0, 5.0])),
        ])
        t, obj = objs.nearest(np.zeros(3), np.array([1.0, 0.0, 0.0]))
        assert t == pytest.approx(4.0)
        assert isinstance(obj, GlassSphere)

    def test_default_objects_deterministic(self):
        cloud = tiny_cloud(32)
        a = SceneObjects.default_for(cloud)
        b = SceneObjects.default_for(cloud)
        assert len(a) == 2
        np.testing.assert_array_equal(a.objects[0].center, b.objects[0].center)


class TestRasterizer:
    def _single_gaussian_cloud(self):
        return GaussianCloud(
            means=np.array([[0.0, 0.0, 0.0]]),
            scales=np.array([[0.5, 0.5, 0.5]]),
            rotations=np.array([[1.0, 0.0, 0.0, 0.0]]),
            opacities=np.array([0.9]),
            sh=np.full((1, 1, 3), 0.8),
        )

    def test_single_gaussian_renders_centered_blob(self):
        cloud = self._single_gaussian_cloud()
        cam = make_camera(17, 17)
        result = GaussianRasterizer(cloud).render(cam)
        img = result.image
        assert img[8, 8].sum() > 0.1
        assert img[8, 8].sum() >= img[0, 0].sum()
        assert result.n_projected == 1

    def test_behind_camera_culled(self):
        cloud = self._single_gaussian_cloud()
        cloud.means[0] = [0.0, -20.0, 0.0]
        result = GaussianRasterizer(cloud).render(make_camera())
        assert result.n_culled == 1
        assert result.image.sum() == 0.0

    def test_work_counters_positive(self):
        cloud = tiny_cloud(64)
        result = GaussianRasterizer(cloud).render(default_camera_for(cloud, 16, 16))
        assert result.pair_ops > 0
        assert result.sort_ops > 0
        assert result.preprocess_ops == result.n_projected

    def test_raster_and_rt_agree_on_simple_scene(self):
        """Rasterization (2D EWA approximation) and ray tracing must agree
        on a well-conditioned single-Gaussian scene."""
        cloud = self._single_gaussian_cloud()
        cam = make_camera(17, 17, fov=40.0)
        raster = GaussianRasterizer(cloud).render(cam).image
        structure = build_two_level(cloud, "sphere")
        rt = GaussianRayTracer(cloud, structure, TraceConfig(k=4)).render(cam).image
        # Centers should be bright in both, within a few percent.
        assert raster[8, 8].mean() == pytest.approx(rt[8, 8].mean(), rel=0.1)


class TestRenderer:
    def test_render_shapes_and_stats(self):
        cloud = tiny_cloud(96, seed=20)
        structure = build_two_level(cloud, "sphere")
        cam = default_camera_for(cloud, 6, 5)
        result = GaussianRayTracer(cloud, structure, TraceConfig(k=4)).render(cam)
        assert result.image.shape == (5, 6, 3)
        assert result.stats.n_rays == 30
        assert result.stats.n_primary == 30
        assert len(result.traces) == 30
        result.drop_traces()
        assert result.traces == []

    def test_secondary_rays_spawned(self):
        cloud = tiny_cloud(96, seed=21)
        structure = build_two_level(cloud, "sphere")
        cam = default_camera_for(cloud, 8, 8)
        objects = SceneObjects([
            GlassSphere(center=cloud.means.mean(axis=0), radius=2.0),
        ])
        result = GaussianRayTracer(cloud, structure, TraceConfig(k=4)).render(
            cam, objects=objects
        )
        assert result.stats.n_secondary > 0
        assert result.stats.n_rays == result.stats.n_primary + result.stats.n_secondary
        labels = {t.label for t in result.traces}
        assert labels == {"primary", "secondary"}

    def test_objects_change_image(self):
        cloud = tiny_cloud(96, seed=22)
        structure = build_two_level(cloud, "sphere")
        cam = default_camera_for(cloud, 8, 8)
        renderer = GaussianRayTracer(cloud, structure, TraceConfig(k=4))
        plain = renderer.render(cam, keep_traces=False).image
        mirrored = renderer.render(
            cam,
            objects=SceneObjects([Mirror(center=cloud.means.mean(axis=0),
                                         half_u=np.array([3.0, 0, 0]),
                                         half_v=np.array([0, 3.0, 0]))]),
            keep_traces=False,
        ).image
        assert not np.array_equal(plain, mirrored)
