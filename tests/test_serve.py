"""Serving layer: registry dedup, frame cache, coalescing, jobs.

Frames here are tiny (the serving behaviors under test are cache and
scheduling logic, not tracer quality), and scenes are generated at
1/10000 scale so each cold render costs well under a second.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.gaussians import make_workload
from repro.serve import (
    LRUCache,
    RenderRequest,
    RenderServer,
    SceneRef,
    SceneRegistry,
    cloud_fingerprint,
)

SCALE = 1.0 / 10000.0


def _request(**overrides) -> RenderRequest:
    defaults = dict(scene="train", scale=SCALE, width=8, height=6)
    defaults.update(overrides)
    return RenderRequest(**defaults)


class TestLRUCache:
    def test_eviction_order_and_counters(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1          # refreshes 'a'
        cache.put("c", 3)                    # evicts 'b'
        assert cache.get("b") is None
        assert cache.get("c") == 3
        stats = cache.stats
        assert (stats.hits, stats.misses, stats.evictions) == (2, 1, 1)

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            LRUCache(0)


class TestSceneSeeding:
    def test_same_seed_bit_identical(self):
        a = make_workload("train", scale=SCALE, seed=5)
        b = make_workload("train", scale=SCALE, seed=5)
        assert cloud_fingerprint(a) == cloud_fingerprint(b)
        assert np.array_equal(a.means, b.means)

    def test_fingerprint_covers_kappa(self):
        from dataclasses import replace

        cloud = make_workload("train", scale=SCALE)
        assert cloud_fingerprint(cloud) != cloud_fingerprint(replace(cloud, kappa=2.0))

    def test_seed_overrides_default(self):
        default = make_workload("train", scale=SCALE)
        reseeded = make_workload("train", scale=SCALE, seed=5)
        assert cloud_fingerprint(default) != cloud_fingerprint(reseeded)

    def test_scene_ref_key_includes_seed(self):
        assert SceneRef("train", SCALE, seed=1).key != SceneRef("train", SCALE, seed=2).key

    def test_request_rejects_conflicting_ref_and_overrides(self):
        ref = SceneRef("train", SCALE, seed=3)
        with pytest.raises(ValueError, match="on the ref"):
            RenderRequest(scene=ref, seed=5)
        with pytest.raises(ValueError, match="on the ref"):
            RenderRequest(scene=ref, scale=SCALE)
        assert RenderRequest(scene=ref).scene_ref is ref


class TestSceneRegistry:
    def test_structure_built_once_per_key(self):
        registry = SceneRegistry()
        ref = SceneRef("train", SCALE)
        first = registry.structure(ref, "tlas+sphere")
        second = registry.structure(ref, "tlas+sphere")
        assert first is second
        assert registry.builds == 1

    def test_distinct_proxy_is_distinct_build(self):
        registry = SceneRegistry()
        ref = SceneRef("train", SCALE)
        registry.structure(ref, "tlas+sphere")
        registry.structure(ref, "20-tri")
        assert registry.builds == 2

    def test_disk_warm_start(self, tmp_path):
        ref = SceneRef("train", SCALE)
        cold = SceneRegistry(cache_dir=tmp_path)
        built = cold.structure(ref, "tlas+sphere")
        assert cold.builds == 1 and cold.disk_hits == 0

        warm = SceneRegistry(cache_dir=tmp_path)
        loaded = warm.structure(ref, "tlas+sphere")
        assert warm.builds == 0 and warm.disk_hits == 1
        assert loaded.total_bytes == built.total_bytes

    def test_unwritable_cache_dir_degrades_gracefully(self, tmp_path, monkeypatch):
        """A failing disk write (full/read-only disk) must not fail the
        request — the in-memory build is still good.

        (Simulated via monkeypatch: chmod tricks don't work under root,
        which is how CI containers run.)
        """
        registry = SceneRegistry(cache_dir=tmp_path)

        def disk_full(structure, path):
            raise OSError(28, "No space left on device")

        monkeypatch.setattr("repro.serve.registry.save_structure", disk_full)
        structure = registry.structure(SceneRef("train", SCALE), "tlas+sphere")
        assert structure is not None
        assert registry.builds == 1
        assert registry.disk_write_errors == 1
        # ... and the in-memory cache still serves it.
        assert registry.structure(SceneRef("train", SCALE), "tlas+sphere") is structure

    def test_corrupt_disk_entry_is_rebuilt(self, tmp_path):
        ref = SceneRef("train", SCALE)
        cold = SceneRegistry(cache_dir=tmp_path)
        cold.structure(ref, "tlas+sphere")
        archives = list(tmp_path.glob("*.npz"))
        assert len(archives) == 1
        archives[0].write_bytes(b"not a structure archive")

        recovering = SceneRegistry(cache_dir=tmp_path)
        structure = recovering.structure(ref, "tlas+sphere")
        assert structure is not None
        assert recovering.disk_rejects == 1
        assert recovering.builds == 1

    @staticmethod
    def _damage_truncated(archive):
        archive.write_bytes(archive.read_bytes()[: archive.stat().st_size // 2])

    @staticmethod
    def _damage_garbage(archive):
        archive.write_bytes(b"\x00" * 256)

    @staticmethod
    def _damage_wrong_version(archive):
        # A well-formed archive from a different format generation: the
        # loader must reject it on the version field, not mis-deserialize.
        np.savez_compressed(archive.with_suffix(""),
                            format_version=np.int64(999))

    @pytest.mark.parametrize(
        "damage", ["truncated", "garbage", "wrong_version"])
    def test_every_corruption_shape_degrades_to_a_rebuild(
            self, tmp_path, damage):
        """Truncated, garbage, and wrong-version cache entries must all
        surface internally as StructureFormatError, get evicted, and be
        served via rebuild — never crash the request or deserialize
        wrong bytes."""
        from repro.bvh.serialize import StructureFormatError, load_structure

        ref = SceneRef("train", SCALE)
        cold = SceneRegistry(cache_dir=tmp_path)
        built = cold.structure(ref, "tlas+sphere")
        (archive,) = tmp_path.glob("*.npz")
        getattr(type(self), f"_damage_{damage}")(archive)

        with pytest.raises(StructureFormatError):
            load_structure(archive)

        recovering = SceneRegistry(cache_dir=tmp_path)
        structure = recovering.structure(ref, "tlas+sphere")
        assert structure.total_bytes == built.total_bytes
        assert recovering.disk_rejects == 1
        assert recovering.disk_hits == 0
        assert recovering.builds == 1
        # The rejected entry was evicted and the rebuild re-persisted,
        # so the next registry warm-starts from a clean cache again.
        assert SceneRegistry(cache_dir=tmp_path).structure(
            ref, "tlas+sphere").total_bytes == built.total_bytes


class TestBenchWorkload:
    def test_unique_configs_are_actually_unique(self):
        from repro.serve.bench import _workload_requests

        requests = _workload_requests("train", 8, SCALE,
                                      ("tlas+sphere", "20-tri"),
                                      unique=12, total=20)
        keys = {req.frame_key("h") for req in requests}
        assert len(keys) == 12


class TestRenderServer:
    def test_repeat_request_hits_frame_cache(self):
        with RenderServer(workers=1) as server:
            request = _request()
            miss = server.render(request)
            hit = server.render(request)
        assert not miss.frame_cache_hit and hit.frame_cache_hit
        assert np.array_equal(miss.image, hit.image)
        assert miss.scene_hash == hit.scene_hash
        assert server.metrics.rendered == 1

    def test_cached_image_is_isolated_from_callers(self):
        with RenderServer(workers=1) as server:
            request = _request()
            first = server.render(request)
            first.image[:] = -1.0
            first.stats.n_rays = -999
            second = server.render(request)
        assert not np.array_equal(first.image, second.image)
        assert second.stats.n_rays == 8 * 6

    def test_frame_key_separates_seed_and_config(self):
        with RenderServer(workers=1) as server:
            base = server.render(_request())
            reseeded = server.render(_request(seed=5))
            other_k = server.render(_request(k=4))
        assert not reseeded.frame_cache_hit
        assert not other_k.frame_cache_hit
        assert base.scene_hash != reseeded.scene_hash
        assert server.metrics.rendered == 3

    def test_batch_dedupes_duplicates(self):
        with RenderServer(workers=1) as server:
            a, b = _request(), _request(k=4)
            responses = server.render_batch([a, a, b, a, b])
        assert server.metrics.rendered == 2
        assert sum(r.frame_cache_hit for r in responses) == 3
        assert np.array_equal(responses[0].image, responses[1].image)

    def test_batch_dedup_survives_frame_cache_eviction(self):
        """Within-batch dedup must not depend on frame-cache capacity."""
        with RenderServer(workers=1, frame_cache_size=1) as server:
            a, b = _request(), _request(k=4)
            responses = server.render_batch([a, b, a])
        assert server.metrics.rendered == 2
        assert responses[2].frame_cache_hit
        assert np.array_equal(responses[0].image, responses[2].image)

    def test_concurrent_identical_requests_render_once(self):
        with RenderServer(workers=1, submit_workers=4) as server:
            request = _request(width=10, height=8)
            barrier = threading.Barrier(4)
            responses = [None] * 4

            def hammer(slot: int) -> None:
                barrier.wait()
                responses[slot] = server.render(request)

            threads = [threading.Thread(target=hammer, args=(i,)) for i in range(4)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()

        assert server.metrics.rendered == 1
        assert all(r is not None for r in responses)
        served_from_cache = sum(r.frame_cache_hit or r.coalesced for r in responses)
        assert served_from_cache == 3
        images = [r.image for r in responses]
        for image in images[1:]:
            assert np.array_equal(image, images[0])

    def test_concurrent_distinct_requests_render_correctly(self):
        """Different frame keys sharing a (scene, structure, config) must
        not share tracer scratch state across submit threads."""
        small, large = _request(width=8, height=6), _request(width=12, height=10)
        with RenderServer(workers=1, submit_workers=2) as server:
            jobs = [server.submit(r) for r in (small, large, small, large)]
            concurrent = {r.width: jobs[i].result(timeout=300).image
                          for i, r in enumerate((small, large))}
        with RenderServer(workers=1) as reference_server:
            for request in (small, large):
                expected = reference_server.render(request).image
                assert np.array_equal(concurrent[request.width], expected)

    def test_submit_returns_completed_job(self):
        with RenderServer(workers=1) as server:
            job = server.submit(_request())
            response = job.result(timeout=120)
        assert job.done() and job.status == "completed"
        assert response.image.shape == (6, 8, 3)

    def test_closed_server_rejects_requests(self):
        server = RenderServer(workers=1)
        server.close()
        with pytest.raises(RuntimeError):
            server.render(_request())

    def test_close_drains_submitted_jobs(self):
        """Jobs accepted before close() complete instead of erroring."""
        server = RenderServer(workers=1, submit_workers=1)
        jobs = [server.submit(_request()),
                server.submit(_request(k=4)),
                server.submit(_request(k=5))]
        server.close()
        for job in jobs:
            assert job.status == "completed"
            assert job.result().image.shape == (6, 8, 3)

    def test_stats_report_shape(self):
        with RenderServer(workers=1) as server:
            server.render(_request())
            report = server.stats_report()
        assert report["server"]["requests"] == 1
        assert report["registry"]["structure_builds"] == 1
        assert report["frame_cache"].size == 1

    def test_rejects_unknown_mode_and_camera(self):
        with pytest.raises(ValueError):
            _request(mode="warp-speed")
        with RenderServer(workers=1) as server:
            with pytest.raises(ValueError):
                server.render(_request(camera="fisheye"))


class TestTracerReuseCache:
    """Regression: the serial-path tracer-reuse cache used to key by
    ``(id(cloud), id(structure), k, checkpointing)``.  ``id()`` values
    are recycled after GC, so a dead scene's id could collide with a new
    scene and serve a tracer built over the wrong geometry, and the
    omitted TraceConfig fields let a cached renderer serve a request
    with a mismatched configuration.  The key must be pure content:
    scene hash + proxy + build params + engine + the full TraceConfig.
    """

    def test_key_is_content_based(self):
        from repro.rt import TraceConfig
        from repro.serve.registry import params_key

        with RenderServer(workers=1) as server:
            request = _request(proxy="20-tri", mode="baseline")
            response = server.render(request)
            keys = list(server._tracers._entries)
        assert len(keys) == 1
        scene_hash, proxy, pkey, engine, config = keys[0]
        assert scene_hash == response.scene_hash
        assert proxy == "20-tri"
        assert pkey == params_key(server.build_params)
        assert engine == "scalar"
        assert config == TraceConfig(k=request.k, checkpointing=False)

    def test_full_config_and_engine_are_in_the_key(self):
        """Requests differing only in mode (checkpointing) or engine must
        check out different cached renderers."""
        with RenderServer(workers=1) as server:
            server.render(_request(proxy="20-tri", mode="baseline"))
            server.render(_request(proxy="20-tri", mode="grtx"))
            server.render(_request(proxy="20-tri", mode="baseline",
                                   engine="packet"))
            keys = list(server._tracers._entries)
        assert len(keys) == 3
        configs = {(key[3], key[4].checkpointing) for key in keys}
        assert configs == {("scalar", False), ("scalar", True),
                           ("packet", False)}

    def test_tracer_reuse_across_frames_of_same_scene(self):
        """Same scene + config at a different frame size reuses the one
        cached renderer (the key holds no per-frame fields)."""
        with RenderServer(workers=1) as server:
            server.render(_request(proxy="20-tri", width=8, height=8))
            server.render(_request(proxy="20-tri", width=6, height=6))
            assert len(server._tracers) == 1
        assert server.metrics.rendered == 2

    def test_distinct_scene_content_never_shares_a_tracer(self):
        """Different seeds generate different geometry; both images must
        match a fresh single-purpose server's output."""
        a, b = _request(seed=1, proxy="20-tri"), _request(seed=2, proxy="20-tri")
        with RenderServer(workers=1) as server:
            img_a = server.render(a).image
            img_b = server.render(b).image
            assert len(server._tracers) == 2
        for request, image in ((a, img_a), (b, img_b)):
            with RenderServer(workers=1) as fresh:
                np.testing.assert_array_equal(fresh.render(request).image, image)
        assert not np.array_equal(img_a, img_b)

    def test_engine_is_part_of_frame_key(self):
        """Engines are parity-matched to 1e-9, not bit-identical, so a
        packet request must not be answered from a scalar frame."""
        with RenderServer(workers=1) as server:
            scalar = server.render(_request(proxy="20-tri", mode="baseline"))
            packet = server.render(_request(proxy="20-tri", mode="baseline",
                                            engine="packet"))
        assert not packet.frame_cache_hit
        assert server.metrics.rendered == 2
        assert np.abs(scalar.image - packet.image).max() <= 1e-9

    def test_rejects_unknown_engine(self):
        with pytest.raises(ValueError):
            _request(engine="quantum")

    def test_auto_resolves_before_frame_keying(self):
        """The frame key carries the *effective* engine, so auto and an
        equivalent explicit engine share one cache entry, and auto's
        resolution follows the mode (checkpointing => scalar)."""
        auto = _request(proxy="tlas+sphere", mode="baseline", engine="auto")
        packet = _request(proxy="tlas+sphere", mode="baseline",
                          engine="packet")
        assert auto.engine_active == "packet"
        assert auto.frame_key("h") == packet.frame_key("h")
        checkpointed = _request(proxy="tlas+sphere", mode="grtx",
                                engine="auto")
        assert checkpointed.engine_active == "scalar"
        with RenderServer(workers=1) as server:
            first = server.render(auto)
            second = server.render(packet)
        assert not first.frame_cache_hit
        assert second.frame_cache_hit

    def test_two_level_packet_request_serves_packet_frames(self):
        """tlas+sphere (the paper's structure) renders on the packet
        engine through the whole serving stack, matching a scalar
        server's frame within the parity bound."""
        request = _request(proxy="tlas+sphere", mode="baseline",
                           engine="packet")
        assert request.engine_active == "packet"
        with RenderServer(workers=1) as server:
            packet = server.render(request)
        with RenderServer(workers=1) as server:
            scalar = server.render(_request(proxy="tlas+sphere",
                                            mode="baseline"))
        assert np.abs(scalar.image - packet.image).max() <= 1e-9
